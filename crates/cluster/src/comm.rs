//! Thread-backed, MPI-like communicator.
//!
//! A [`CommWorld`] owns `size` endpoints; each endpoint is handed to one OS
//! thread and behaves like an MPI rank. Point-to-point messages are typed
//! (any `Send + 'static` payload) and matched by `(source, tag)`. On top of
//! the point-to-point layer we provide barriers and the collectives used by
//! the PIC halo exchange, the staging metadata path and DDP training.
//!
//! Collectives execute the explicit schedules from [`crate::algos`]: under
//! the default [`CollectiveAlgo::Log`] a broadcast walks a binomial tree,
//! gather mirrors it, allgather runs the Bruck dissemination rounds, and a
//! small allreduce takes the allgather-based path with the canonical ring
//! reduction order (so numerics are bit-identical across algorithms — see
//! the `algos` module docs). [`CollectiveAlgo::Linear`] keeps the
//! historical root-fan-out loops as a baseline.
//!
//! Messages between ranks never copy through shared memory owned by a third
//! party: the payload is moved through a channel, which mirrors the
//! zero-intermediate-storage philosophy of the paper's in-transit design.

use std::any::Any;
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Barrier};

use crossbeam::channel::{unbounded, Receiver, Sender};
use parking_lot::Mutex;

use crate::algos::{
    allreduce_goes_log, binomial_plan, bruck_rounds, reduce_in_ring_order, CollectiveAlgo,
};

/// Wildcard tag: matches any tag in [`Communicator::recv_any_tag`].
pub const ANY_TAG: u64 = u64::MAX;

/// Tags at or above this value are reserved for internal collectives.
pub const RESERVED_TAG_BASE: u64 = 1 << 62;

const BCAST_TAG: u64 = RESERVED_TAG_BASE;
const GATHER_TAG: u64 = RESERVED_TAG_BASE + (1 << 32);
const RS_TAG: u64 = RESERVED_TAG_BASE + (2 << 32);
const AG_TAG: u64 = RESERVED_TAG_BASE + (3 << 32);
const BRUCK_TAG: u64 = RESERVED_TAG_BASE + (4 << 32);
const SMALL_AR_TAG: u64 = RESERVED_TAG_BASE + (5 << 32);

type Payload = Box<dyn Any + Send>;

struct Envelope {
    source: usize,
    tag: u64,
    payload: Payload,
}

/// A fixed-size group of communicating ranks.
///
/// Construct one world per logical job (a simulation, a reader group, a DDP
/// trainer), split the endpoints across threads and drop the world handle.
pub struct CommWorld {
    endpoints: Vec<Communicator>,
}

impl CommWorld {
    /// Create a world with `size` ranks running the default log-depth
    /// collective schedules ([`CollectiveAlgo::Log`]).
    ///
    /// # Panics
    /// Panics if `size == 0`.
    pub fn new(size: usize) -> Self {
        Self::with_algo(size, CollectiveAlgo::Log)
    }

    /// Create a world with `size` ranks running `algo` collectives.
    ///
    /// # Panics
    /// Panics if `size == 0`.
    pub fn with_algo(size: usize, algo: CollectiveAlgo) -> Self {
        assert!(size > 0, "communicator world must have at least one rank");
        let mut senders: Vec<Sender<Envelope>> = Vec::with_capacity(size);
        let mut receivers: Vec<Receiver<Envelope>> = Vec::with_capacity(size);
        for _ in 0..size {
            let (tx, rx) = unbounded();
            senders.push(tx);
            receivers.push(rx);
        }
        let barrier = Arc::new(Barrier::new(size));
        let bytes_sent = Arc::new(AtomicU64::new(0));
        let messages_sent = Arc::new(AtomicU64::new(0));
        let endpoints = receivers
            .into_iter()
            .enumerate()
            .map(|(rank, rx)| Communicator {
                rank,
                size,
                algo,
                peers: senders.clone(),
                inbox: rx,
                stash: Mutex::new(HashMap::new()),
                barrier: barrier.clone(),
                bytes_sent: bytes_sent.clone(),
                messages_sent: messages_sent.clone(),
            })
            .collect();
        Self { endpoints }
    }

    /// Take the endpoints out, one per rank, in rank order.
    pub fn into_endpoints(self) -> Vec<Communicator> {
        self.endpoints
    }
}

/// One rank's endpoint in a [`CommWorld`].
pub struct Communicator {
    rank: usize,
    size: usize,
    algo: CollectiveAlgo,
    peers: Vec<Sender<Envelope>>,
    inbox: Receiver<Envelope>,
    /// Out-of-order messages parked until a matching `recv` arrives.
    stash: Mutex<HashMap<(usize, u64), Vec<Envelope>>>,
    barrier: Arc<Barrier>,
    bytes_sent: Arc<AtomicU64>,
    messages_sent: Arc<AtomicU64>,
}

impl Communicator {
    /// This endpoint's rank in `0..size`.
    pub fn rank(&self) -> usize {
        self.rank
    }

    /// Number of ranks in the world.
    pub fn size(&self) -> usize {
        self.size
    }

    /// The collective algorithm family this world executes.
    pub fn algo(&self) -> CollectiveAlgo {
        self.algo
    }

    /// Total payload bytes sent across the whole world so far (for traffic
    /// accounting in scaling studies). Only slice-typed sends are counted.
    pub fn world_bytes_sent(&self) -> u64 {
        self.bytes_sent.load(Ordering::Relaxed)
    }

    /// Total point-to-point messages sent across the whole world so far —
    /// every `send`, including collective-internal hops, counts one. The
    /// message count is what separates the linear and log-depth schedules
    /// when payloads are small, so benchmarks report it alongside bytes.
    pub fn world_messages_sent(&self) -> u64 {
        self.messages_sent.load(Ordering::Relaxed)
    }

    fn account(&self, bytes: usize) {
        self.bytes_sent.fetch_add(bytes as u64, Ordering::Relaxed);
    }

    /// Record `bytes` of payload carried by messages whose size the type
    /// system hides (e.g. a broadcast of structured samples). Callers
    /// that know the serialized size of an opaque payload use this to
    /// keep [`Self::world_bytes_sent`] honest.
    pub fn account_payload(&self, bytes: u64) {
        self.bytes_sent.fetch_add(bytes, Ordering::Relaxed);
    }

    /// Send `value` to rank `dest` with message tag `tag`.
    ///
    /// Never blocks (channels are unbounded, as MPI eager sends effectively
    /// are for the message sizes used here).
    pub fn send<T: Send + 'static>(&self, dest: usize, tag: u64, value: T) {
        assert!(dest < self.size, "send to out-of-range rank {dest}");
        assert_ne!(tag, ANY_TAG, "ANY_TAG is reserved for receives");
        self.messages_sent.fetch_add(1, Ordering::Relaxed);
        let env = Envelope {
            source: self.rank,
            tag,
            payload: Box::new(value),
        };
        // A send can only fail if the receiving endpoint was dropped, which
        // is a teardown race we treat as a hard usage error.
        self.peers[dest]
            .send(env)
            .expect("send to a dropped communicator endpoint");
    }

    /// Send a typed vector, accounting its size in the world traffic counter.
    pub fn send_vec<T: Send + 'static>(&self, dest: usize, tag: u64, value: Vec<T>) {
        self.account(value.len() * std::mem::size_of::<T>());
        self.send(dest, tag, value);
    }

    /// Blocking receive of a `T` from `source` with tag `tag`.
    ///
    /// # Panics
    /// Panics if the matched message is not of type `T` (a protocol bug).
    pub fn recv<T: Send + 'static>(&self, source: usize, tag: u64) -> T {
        let env = self.match_envelope(source, tag);
        *env.payload
            .downcast::<T>()
            .unwrap_or_else(|_| panic!("type mismatch on recv from {source} tag {tag}"))
    }

    /// Blocking receive matching only the source, returning `(tag, value)`.
    pub fn recv_any_tag<T: Send + 'static>(&self, source: usize) -> (u64, T) {
        let env = self.match_envelope(source, ANY_TAG);
        let tag = env.tag;
        let value = *env
            .payload
            .downcast::<T>()
            .unwrap_or_else(|_| panic!("type mismatch on recv from {source}"));
        (tag, value)
    }

    fn match_envelope(&self, source: usize, tag: u64) -> Envelope {
        // Fast path: check the stash for an already-delivered match.
        {
            let mut stash = self.stash.lock();
            if tag == ANY_TAG {
                let key = stash
                    .iter()
                    .find(|((s, _), v)| *s == source && !v.is_empty())
                    .map(|(k, _)| *k);
                if let Some(key) = key {
                    let q = stash.get_mut(&key).expect("stash key vanished");
                    return q.remove(0);
                }
            } else if let Some(q) = stash.get_mut(&(source, tag)) {
                if !q.is_empty() {
                    return q.remove(0);
                }
            }
        }
        // Slow path: drain the inbox, stashing non-matching envelopes.
        loop {
            let env = self
                .inbox
                .recv()
                .expect("communicator world torn down while receiving");
            let matches = env.source == source && (tag == ANY_TAG || env.tag == tag);
            if matches {
                return env;
            }
            self.stash
                .lock()
                .entry((env.source, env.tag))
                .or_default()
                .push(env);
        }
    }

    /// Synchronise all ranks.
    pub fn barrier(&self) {
        self.barrier.wait();
    }

    /// Broadcast `value` from `root` to all ranks; every rank returns it.
    ///
    /// Under [`CollectiveAlgo::Log`] the value moves down a binomial tree
    /// (depth `⌈log₂ p⌉`, the root sends `⌈log₂ p⌉` messages); under
    /// [`CollectiveAlgo::Linear`] the root fans out `p-1` messages.
    pub fn broadcast<T: Clone + Send + 'static>(&self, root: usize, value: Option<T>) -> T {
        match self.algo {
            CollectiveAlgo::Linear => {
                if self.rank == root {
                    let v = value.expect("root must supply the broadcast value");
                    for dest in 0..self.size {
                        if dest != root {
                            self.send(dest, BCAST_TAG, v.clone());
                        }
                    }
                    v
                } else {
                    self.recv::<T>(root, BCAST_TAG)
                }
            }
            CollectiveAlgo::Log => {
                let plan = binomial_plan(self.size, root, self.rank);
                let v = match plan.parent {
                    None => value.expect("root must supply the broadcast value"),
                    Some(parent) => self.recv::<T>(parent, BCAST_TAG),
                };
                for &(child, _) in &plan.children {
                    self.send(child, BCAST_TAG, v.clone());
                }
                v
            }
        }
    }

    /// Gather every rank's value at `root`; returns `Some(values)` on root
    /// (indexed by rank), `None` elsewhere.
    ///
    /// Under [`CollectiveAlgo::Log`] contributions merge up the binomial
    /// tree as `(rank, value)` pair lists, so every rank sends exactly one
    /// message (its whole subtree) and the root receives `⌈log₂ p⌉`.
    pub fn gather<T: Send + 'static>(&self, root: usize, value: T) -> Option<Vec<T>> {
        match self.algo {
            CollectiveAlgo::Linear => {
                if self.rank == root {
                    let mut out: Vec<Option<T>> = (0..self.size).map(|_| None).collect();
                    out[root] = Some(value);
                    for (src, slot) in out.iter_mut().enumerate() {
                        if src != root {
                            *slot = Some(self.recv::<T>(src, GATHER_TAG));
                        }
                    }
                    Some(out.into_iter().map(|v| v.expect("gather slot")).collect())
                } else {
                    self.send(root, GATHER_TAG, value);
                    None
                }
            }
            CollectiveAlgo::Log => {
                let plan = binomial_plan(self.size, root, self.rank);
                let mut subtree: Vec<(usize, T)> = vec![(self.rank, value)];
                for &(child, _) in plan.children.iter().rev() {
                    let got: Vec<(usize, T)> = self.recv(child, GATHER_TAG);
                    subtree.extend(got);
                }
                match plan.parent {
                    Some(parent) => {
                        self.send(parent, GATHER_TAG, subtree);
                        None
                    }
                    None => {
                        let mut out: Vec<Option<T>> = (0..self.size).map(|_| None).collect();
                        for (r, v) in subtree {
                            debug_assert!(out[r].is_none(), "duplicate gather contribution");
                            out[r] = Some(v);
                        }
                        Some(out.into_iter().map(|v| v.expect("gather slot")).collect())
                    }
                }
            }
        }
    }

    /// All-gather: every rank contributes `value`, every rank receives the
    /// rank-indexed vector of all contributions.
    ///
    /// Under [`CollectiveAlgo::Log`] this is the single-phase Bruck
    /// dissemination schedule — `⌈log₂ p⌉` rounds, each rank sending and
    /// receiving once per round, every block crossing the wire exactly
    /// once. [`CollectiveAlgo::Linear`] keeps the historical
    /// gather-to-root-then-broadcast, which moves (and prices) every
    /// payload twice.
    pub fn allgather<T: Clone + Send + 'static>(&self, value: T) -> Vec<T> {
        match self.algo {
            CollectiveAlgo::Linear => {
                let gathered = self.gather(0, value);
                if self.rank == 0 {
                    let v = gathered.expect("root gather");
                    self.broadcast(0, Some(v))
                } else {
                    self.broadcast::<Vec<T>>(0, None)
                }
            }
            CollectiveAlgo::Log => self.bruck_allgather(value, BRUCK_TAG, 0),
        }
    }

    /// The Bruck dissemination allgather: after round `k` this rank holds
    /// blocks `rank..rank + 2^{k+1}` (mod `p`) in order, so the first
    /// `blocks` held entries are exactly what the next peer is missing.
    /// When `bytes_per_block > 0` each send accounts `blocks ×` that size
    /// in the world traffic counter.
    fn bruck_allgather<T: Clone + Send + 'static>(
        &self,
        value: T,
        tag_base: u64,
        bytes_per_block: usize,
    ) -> Vec<T> {
        let mut held: Vec<(usize, T)> = vec![(self.rank, value)];
        for (k, round) in bruck_rounds(self.size, self.rank).into_iter().enumerate() {
            let out: Vec<(usize, T)> = held[..round.blocks].to_vec();
            if bytes_per_block > 0 {
                self.account(round.blocks * bytes_per_block);
            }
            self.send(round.to, tag_base + k as u64, out);
            let incoming: Vec<(usize, T)> = self.recv(round.from, tag_base + k as u64);
            held.extend(incoming);
        }
        let mut out: Vec<Option<T>> = (0..self.size).map(|_| None).collect();
        for (r, v) in held {
            debug_assert!(out[r].is_none(), "duplicate allgather block");
            out[r] = Some(v);
        }
        out.into_iter()
            .map(|v| v.expect("allgather block"))
            .collect()
    }

    /// In-place all-reduce (sum) over an `f32` buffer.
    ///
    /// Large buffers take the bandwidth-optimal ring reduce-scatter +
    /// all-gather, the same algorithm NCCL/RCCL uses for large tensors, so
    /// the traffic pattern matches the gradient averaging the paper's DDP
    /// training performs every step. Small buffers (at most
    /// [`crate::algos::SMALL_ALLREDUCE_BYTES`], under the log-depth algo)
    /// instead Bruck-allgather the raw contributions and reduce locally in
    /// the canonical ring order — `⌈log₂ p⌉` latency instead of `2(p-1)`,
    /// bit-identical results.
    pub fn allreduce_sum_f32(&self, buf: &mut [f32]) {
        self.allreduce(buf, |a, b| *a += b);
    }

    /// In-place all-reduce (sum) over an `f64` buffer.
    pub fn allreduce_sum_f64(&self, buf: &mut [f64]) {
        self.allreduce(buf, |a, b| *a += b);
    }

    /// In-place all-reduce taking the element-wise maximum.
    pub fn allreduce_max_f64(&self, buf: &mut [f64]) {
        self.allreduce(buf, |a, b| {
            if b > *a {
                *a = b
            }
        });
    }

    /// Size-selected allreduce: log-depth allgather path for small
    /// buffers, ring for everything else (see [`crate::algos`]).
    fn allreduce<T, F>(&self, buf: &mut [T], reduce: F)
    where
        T: Copy + Send + 'static,
        F: FnMut(&mut T, T),
    {
        if allreduce_goes_log(self.algo, std::mem::size_of_val(buf)) {
            self.small_allreduce(buf, reduce);
        } else {
            self.ring_allreduce(buf, reduce);
        }
    }

    /// Log-depth small-buffer allreduce: every rank Bruck-allgathers its
    /// full contribution (accounting the real wire bytes), then reduces
    /// locally in the canonical ring order, which makes the result
    /// bit-identical to [`Self::ring_allreduce`].
    fn small_allreduce<T, F>(&self, buf: &mut [T], reduce: F)
    where
        T: Copy + Send + 'static,
        F: FnMut(&mut T, T),
    {
        if self.size == 1 || buf.is_empty() {
            return;
        }
        let contribs = self.bruck_allgather(buf.to_vec(), SMALL_AR_TAG, std::mem::size_of_val(buf));
        reduce_in_ring_order(&contribs, buf, reduce);
    }

    fn ring_allreduce<T, F>(&self, buf: &mut [T], mut reduce: F)
    where
        T: Copy + Send + 'static,
        F: FnMut(&mut T, T),
    {
        let n = self.size;
        if n == 1 || buf.is_empty() {
            return;
        }
        // Partition the buffer into n chunks (last chunk absorbs remainder).
        let len = buf.len();
        let chunk = len.div_ceil(n);
        let bounds = move |i: usize| -> (usize, usize) {
            let s = (i * chunk).min(len);
            let e = ((i + 1) * chunk).min(len);
            (s, e)
        };
        let next = (self.rank + 1) % n;
        let prev = (self.rank + n - 1) % n;

        // Reduce-scatter: after n-1 steps, rank r owns the fully reduced
        // chunk (r+1) mod n.
        for step in 0..n - 1 {
            let send_idx = (self.rank + n - step) % n;
            let recv_idx = (self.rank + n - step - 1) % n;
            let (s, e) = bounds(send_idx);
            let out: Vec<T> = buf[s..e].to_vec();
            self.account(out.len() * std::mem::size_of::<T>());
            self.send(next, RS_TAG + step as u64, out);
            let incoming: Vec<T> = self.recv(prev, RS_TAG + step as u64);
            let (s, e) = bounds(recv_idx);
            for (dst, src) in buf[s..e].iter_mut().zip(incoming) {
                reduce(dst, src);
            }
        }
        // All-gather: circulate the reduced chunks.
        for step in 0..n - 1 {
            let send_idx = (self.rank + 1 + n - step) % n;
            let recv_idx = (self.rank + n - step) % n;
            let (s, e) = bounds(send_idx);
            let out: Vec<T> = buf[s..e].to_vec();
            self.account(out.len() * std::mem::size_of::<T>());
            self.send(next, AG_TAG + step as u64, out);
            let incoming: Vec<T> = self.recv(prev, AG_TAG + step as u64);
            let (s, e) = bounds(recv_idx);
            buf[s..e].copy_from_slice(&incoming);
        }
    }

    /// Scalar sum all-reduce convenience.
    pub fn allreduce_scalar_f64(&self, v: f64) -> f64 {
        let mut buf = [v];
        self.allreduce_sum_f64(&mut buf);
        buf[0]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::thread;

    fn run_world<F>(n: usize, f: F)
    where
        F: Fn(Communicator) + Send + Sync + Copy + 'static,
    {
        run_world_algo(n, CollectiveAlgo::Log, f);
    }

    fn run_world_algo<F>(n: usize, algo: CollectiveAlgo, f: F)
    where
        F: Fn(Communicator) + Send + Sync + Copy + 'static,
    {
        let eps = CommWorld::with_algo(n, algo).into_endpoints();
        let handles: Vec<_> = eps
            .into_iter()
            .map(|c| thread::spawn(move || f(c)))
            .collect();
        for h in handles {
            h.join().expect("rank thread panicked");
        }
    }

    const BOTH_ALGOS: [CollectiveAlgo; 2] = [CollectiveAlgo::Linear, CollectiveAlgo::Log];

    #[test]
    fn point_to_point_roundtrip() {
        run_world(2, |c| {
            if c.rank() == 0 {
                c.send(1, 7, vec![1.0f64, 2.0, 3.0]);
                let back: Vec<f64> = c.recv(1, 8);
                assert_eq!(back, vec![6.0]);
            } else {
                let v: Vec<f64> = c.recv(0, 7);
                c.send(0, 8, vec![v.iter().sum::<f64>()]);
            }
        });
    }

    #[test]
    fn out_of_order_tags_are_stashed() {
        run_world(2, |c| {
            if c.rank() == 0 {
                c.send(1, 1, 10u32);
                c.send(1, 2, 20u32);
            } else {
                // Receive tag 2 first although tag 1 arrives first.
                let b: u32 = c.recv(0, 2);
                let a: u32 = c.recv(0, 1);
                assert_eq!((a, b), (10, 20));
            }
        });
    }

    #[test]
    fn broadcast_reaches_all_ranks() {
        // Both algorithms, power-of-two and non-power-of-two worlds,
        // non-zero roots included.
        for algo in BOTH_ALGOS {
            for n in [1usize, 2, 4, 5, 7] {
                run_world_algo(n, algo, move |c| {
                    let root = 2 % c.size();
                    let v = if c.rank() == root {
                        c.broadcast(root, Some(vec![9u8; 3]))
                    } else {
                        c.broadcast::<Vec<u8>>(root, None)
                    };
                    assert_eq!(v, vec![9u8; 3]);
                });
            }
        }
    }

    #[test]
    fn gather_collects_in_rank_order() {
        for algo in BOTH_ALGOS {
            for n in [1usize, 3, 5, 8] {
                run_world_algo(n, algo, move |c| {
                    let root = c.size() - 1;
                    let got = c.gather(root, c.rank() as u64 * 10);
                    if c.rank() == root {
                        let expect: Vec<u64> = (0..c.size() as u64).map(|r| r * 10).collect();
                        assert_eq!(got.expect("root"), expect);
                    } else {
                        assert!(got.is_none());
                    }
                });
            }
        }
    }

    #[test]
    fn allgather_is_symmetric() {
        for algo in BOTH_ALGOS {
            for n in [1usize, 2, 3, 6, 8] {
                run_world_algo(n, algo, move |c| {
                    let all = c.allgather(c.rank());
                    let expect: Vec<usize> = (0..c.size()).collect();
                    assert_eq!(all, expect);
                });
            }
        }
    }

    #[test]
    fn world_message_counter_counts_collective_hops() {
        fn messages_after_broadcast(algo: CollectiveAlgo) -> u64 {
            let eps = CommWorld::with_algo(8, algo).into_endpoints();
            let handles: Vec<_> = eps
                .into_iter()
                .map(|c| {
                    thread::spawn(move || {
                        let _ = if c.rank() == 0 {
                            c.broadcast(0, Some(1u8))
                        } else {
                            c.broadcast::<u8>(0, None)
                        };
                        c.barrier();
                        c.world_messages_sent()
                    })
                })
                .collect();
            handles
                .into_iter()
                .map(|h| h.join().expect("rank thread panicked"))
                .max()
                .expect("non-empty world")
        }
        // A broadcast delivers the value to every non-root rank exactly
        // once under either algorithm, so the world total is p-1 hops for
        // both; what differs is the *root's serialized share* (p-1 linear
        // vs ⌈log₂ p⌉ on the tree), which the pricing layer charges.
        assert_eq!(messages_after_broadcast(CollectiveAlgo::Linear), 7);
        assert_eq!(messages_after_broadcast(CollectiveAlgo::Log), 7);
    }

    #[test]
    fn small_allreduce_is_bit_identical_to_ring() {
        // The log-depth path must reproduce the ring's reduction order
        // exactly, bit for bit, for an order-sensitive float sum.
        for n in [2usize, 3, 4, 7, 8] {
            let results: Vec<Vec<u32>> = BOTH_ALGOS
                .iter()
                .map(|&algo| {
                    let eps = CommWorld::with_algo(n, algo).into_endpoints();
                    let handles: Vec<_> = eps
                        .into_iter()
                        .map(|c| {
                            thread::spawn(move || {
                                // Values chosen so different summation orders
                                // give different last-bit rounding.
                                let mut buf: Vec<f32> = (0..13)
                                    .map(|i| 0.1f32 + (c.rank() as f32) * 0.3 + i as f32 * 1e-4)
                                    .collect();
                                c.allreduce_sum_f32(&mut buf);
                                buf.iter().map(|v| v.to_bits()).collect::<Vec<u32>>()
                            })
                        })
                        .collect();
                    let mut per_rank: Vec<Vec<u32>> = handles
                        .into_iter()
                        .map(|h| h.join().expect("rank thread panicked"))
                        .collect();
                    // All ranks agree with each other.
                    let first = per_rank.remove(0);
                    for other in &per_rank {
                        assert_eq!(&first, other, "ranks disagree, n={n}");
                    }
                    first
                })
                .collect();
            assert_eq!(
                results[0], results[1],
                "linear (ring) vs log (allgather) allreduce differ, n={n}"
            );
        }
    }

    #[test]
    fn ring_allreduce_matches_serial_sum() {
        for n in [1usize, 2, 3, 4, 7] {
            run_world(n, move |c| {
                let len = 13; // deliberately not divisible by world size
                let mut buf: Vec<f32> = (0..len).map(|i| (c.rank() * 100 + i) as f32).collect();
                c.allreduce_sum_f32(&mut buf);
                for (i, v) in buf.iter().enumerate() {
                    let expect: f32 = (0..c.size()).map(|r| (r * 100 + i) as f32).sum();
                    assert!((v - expect).abs() < 1e-3, "n={n} i={i}");
                }
            });
        }
    }

    #[test]
    fn allreduce_max_takes_elementwise_max() {
        run_world(4, |c| {
            let mut buf = vec![c.rank() as f64, -(c.rank() as f64)];
            c.allreduce_max_f64(&mut buf);
            assert_eq!(buf, vec![3.0, 0.0]);
        });
    }

    #[test]
    fn scalar_allreduce() {
        run_world(6, |c| {
            let s = c.allreduce_scalar_f64(1.5);
            assert!((s - 9.0).abs() < 1e-12);
        });
    }

    #[test]
    fn barrier_synchronises() {
        use std::sync::atomic::{AtomicUsize, Ordering};
        static BEFORE: AtomicUsize = AtomicUsize::new(0);
        run_world(4, |c| {
            BEFORE.fetch_add(1, Ordering::SeqCst);
            c.barrier();
            assert_eq!(BEFORE.load(Ordering::SeqCst), 4);
        });
    }

    #[test]
    fn traffic_accounting_counts_vec_sends() {
        run_world(2, |c| {
            if c.rank() == 0 {
                c.send_vec(1, 3, vec![0u8; 128]);
            } else {
                let _: Vec<u8> = c.recv(0, 3);
            }
            c.barrier();
            assert!(c.world_bytes_sent() >= 128);
        });
    }
}
