//! Analytic cost models for the collectives that dominate the paper's
//! scaling behaviour.
//!
//! The *implementations* of the collectives live on
//! [`crate::comm::Communicator`] and move real bytes between threads,
//! executing the [`crate::algos`] schedules. At paper scale (up to 384
//! GCDs for training, 36 864+ for the simulation) we additionally need
//! wall-clock *models*; the standard alpha-beta model for ring and tree
//! algorithms is used, with per-machine constants taken from
//! [`crate::machine`].
//!
//! These models are not commentary: [`crate::collective::SimNetComm`]
//! prices each collective by walking the same schedule the executor
//! runs, so its modelled seconds match the closed forms here
//! (`tests/alpha_beta_model.rs` asserts the correspondence at 16 and 64
//! ranks).

use crate::machine::MachineSpec;

/// Which all-reduce algorithm to model.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AllReduceAlgo {
    /// Ring reduce-scatter + all-gather: bandwidth-optimal, latency ∝ p.
    Ring,
    /// Binary-tree reduce + broadcast: latency ∝ log p, 2× bandwidth cost.
    Tree,
}

/// Cost breakdown of one collective invocation.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CollectiveCost {
    /// Latency-term seconds (α · steps).
    pub latency: f64,
    /// Bandwidth-term seconds (β · bytes-moved).
    pub bandwidth: f64,
}

impl CollectiveCost {
    /// Total seconds.
    pub fn total(&self) -> f64 {
        self.latency + self.bandwidth
    }
}

/// Effective point-to-point bandwidth for one participant, bytes/second.
///
/// `ranks_per_node` participants share the node's NICs; intra-node stages of
/// hierarchical algorithms use the (faster) intra-node links, which we fold
/// into an effective value.
pub fn effective_link_bandwidth(spec: &MachineSpec, ranks_per_node: usize) -> f64 {
    let nic = spec.nic_bandwidth * spec.nics_per_node as f64 / ranks_per_node.max(1) as f64;
    nic.min(spec.intra_node_bandwidth)
}

/// Model the cost of an all-reduce over `bytes` payload across `ranks`
/// ranks placed `ranks_per_node` per node.
pub fn allreduce_cost(
    spec: &MachineSpec,
    algo: AllReduceAlgo,
    ranks: usize,
    ranks_per_node: usize,
    bytes: f64,
) -> CollectiveCost {
    if ranks <= 1 {
        return CollectiveCost {
            latency: 0.0,
            bandwidth: 0.0,
        };
    }
    let p = ranks as f64;
    let bw = effective_link_bandwidth(spec, ranks_per_node);
    match algo {
        AllReduceAlgo::Ring => CollectiveCost {
            // 2(p-1) steps of α; 2(p-1)/p of the buffer crosses each link.
            latency: 2.0 * (p - 1.0) * spec.net_latency,
            bandwidth: 2.0 * (p - 1.0) / p * bytes / bw,
        },
        AllReduceAlgo::Tree => CollectiveCost {
            latency: 2.0 * p.log2().ceil() * spec.net_latency,
            bandwidth: 2.0 * p.log2().ceil() * bytes / bw / p.log2().ceil().max(1.0),
        },
    }
}

/// Model the cost of an all-gather where each rank contributes `bytes`:
/// the Bruck dissemination schedule — `⌈log₂ p⌉` latency steps, with
/// every rank still moving the unavoidable `(p-1)·bytes` through its
/// link.
pub fn allgather_cost(
    spec: &MachineSpec,
    ranks: usize,
    ranks_per_node: usize,
    bytes: f64,
) -> CollectiveCost {
    if ranks <= 1 {
        return CollectiveCost {
            latency: 0.0,
            bandwidth: 0.0,
        };
    }
    let p = ranks as f64;
    let bw = effective_link_bandwidth(spec, ranks_per_node);
    CollectiveCost {
        latency: p.log2().ceil() * spec.net_latency,
        bandwidth: (p - 1.0) * bytes / bw,
    }
}

/// Model the cost of a binomial-tree broadcast of `bytes`: the root's
/// critical path is `⌈log₂ p⌉` serialized full-payload sends.
pub fn broadcast_cost(
    spec: &MachineSpec,
    ranks: usize,
    ranks_per_node: usize,
    bytes: f64,
) -> CollectiveCost {
    if ranks <= 1 {
        return CollectiveCost {
            latency: 0.0,
            bandwidth: 0.0,
        };
    }
    let steps = (ranks as f64).log2().ceil();
    let bw = effective_link_bandwidth(spec, ranks_per_node);
    CollectiveCost {
        latency: steps * spec.net_latency,
        bandwidth: steps * bytes / bw,
    }
}

/// Model the cost of a binomial-tree gather where each rank contributes
/// `bytes`: the root receives `⌈log₂ p⌉` subtree messages totalling the
/// unavoidable `(p-1)·bytes`.
pub fn gather_cost(
    spec: &MachineSpec,
    ranks: usize,
    ranks_per_node: usize,
    bytes: f64,
) -> CollectiveCost {
    if ranks <= 1 {
        return CollectiveCost {
            latency: 0.0,
            bandwidth: 0.0,
        };
    }
    let p = ranks as f64;
    let bw = effective_link_bandwidth(spec, ranks_per_node);
    CollectiveCost {
        latency: p.log2().ceil() * spec.net_latency,
        bandwidth: (p - 1.0) * bytes / bw,
    }
}

/// Model the cost of the small-buffer log-depth allreduce (allgather of
/// full contributions + local reduction, communication-wise an allgather
/// of the whole `bytes` buffer).
pub fn allreduce_small_cost(
    spec: &MachineSpec,
    ranks: usize,
    ranks_per_node: usize,
    bytes: f64,
) -> CollectiveCost {
    allgather_cost(spec, ranks, ranks_per_node, bytes)
}

/// Host-synchronisation penalty for operations that break the device graph.
///
/// §V-A: the naive distributed MMD implementation calls
/// `all_gather_into_tensor`, which "breaks the torch computational graph,
/// i.e. synchronizes graph execution with host code at the invocation site".
/// We model that as a fixed host round-trip plus a small per-rank jitter term
/// (stragglers get worse with scale).
pub fn graph_break_penalty(ranks: usize, kernel_launch: f64, jitter_per_rank: f64) -> f64 {
    kernel_launch + jitter_per_rank * (ranks as f64).sqrt()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::machine::FRONTIER;

    #[test]
    fn allreduce_zero_for_single_rank() {
        let c = allreduce_cost(&FRONTIER, AllReduceAlgo::Ring, 1, 8, 1e9);
        assert_eq!(c.total(), 0.0);
    }

    #[test]
    fn ring_bandwidth_term_approaches_2x_buffer_time() {
        // For large p the ring moves ~2 buffers per link.
        let bytes = 1.0e9;
        let c = allreduce_cost(&FRONTIER, AllReduceAlgo::Ring, 1024, 8, bytes);
        let bw = FRONTIER.nic_bandwidth * FRONTIER.nics_per_node as f64 / 8.0;
        let ideal = 2.0 * bytes / bw;
        assert!((c.bandwidth - ideal).abs() / ideal < 0.01);
    }

    #[test]
    fn ring_latency_grows_linearly_tree_logarithmically() {
        let ring_small = allreduce_cost(&FRONTIER, AllReduceAlgo::Ring, 8, 8, 1.0).latency;
        let ring_large = allreduce_cost(&FRONTIER, AllReduceAlgo::Ring, 512, 8, 1.0).latency;
        let tree_small = allreduce_cost(&FRONTIER, AllReduceAlgo::Tree, 8, 8, 1.0).latency;
        let tree_large = allreduce_cost(&FRONTIER, AllReduceAlgo::Tree, 512, 8, 1.0).latency;
        assert!(ring_large / ring_small > 50.0);
        assert!(tree_large / tree_small < 4.0);
    }

    #[test]
    fn more_ranks_per_node_shrinks_effective_bandwidth() {
        let sparse = allreduce_cost(&FRONTIER, AllReduceAlgo::Ring, 64, 1, 1e9);
        let dense = allreduce_cost(&FRONTIER, AllReduceAlgo::Ring, 64, 8, 1e9);
        assert!(dense.bandwidth > sparse.bandwidth);
    }

    #[test]
    fn allgather_cost_scales_with_ranks() {
        let c8 = allgather_cost(&FRONTIER, 8, 8, 1e6).total();
        let c64 = allgather_cost(&FRONTIER, 64, 8, 1e6).total();
        assert!(c64 > 5.0 * c8);
    }

    #[test]
    fn allgather_latency_is_logarithmic() {
        // Bruck: tiny payloads are latency-bound, ⌈log₂ p⌉ steps.
        let l16 = allgather_cost(&FRONTIER, 16, 8, 1.0).latency;
        let l64 = allgather_cost(&FRONTIER, 64, 8, 1.0).latency;
        assert!((l16 - 4.0 * FRONTIER.net_latency).abs() < 1e-12);
        assert!((l64 - 6.0 * FRONTIER.net_latency).abs() < 1e-12);
    }

    #[test]
    fn broadcast_and_gather_are_log_depth() {
        for p in [16usize, 64] {
            let steps = (p as f64).log2().ceil();
            let b = broadcast_cost(&FRONTIER, p, 8, 1e6);
            assert!((b.latency - steps * FRONTIER.net_latency).abs() < 1e-12);
            let g = gather_cost(&FRONTIER, p, 8, 1e6);
            assert!((g.latency - steps * FRONTIER.net_latency).abs() < 1e-12);
            // Gather still moves all (p-1) contributions through the root.
            assert!(g.bandwidth > b.bandwidth);
        }
    }

    #[test]
    fn small_allreduce_is_an_allgather_in_cost() {
        let a = allreduce_small_cost(&FRONTIER, 16, 8, 48.0);
        let b = allgather_cost(&FRONTIER, 16, 8, 48.0);
        assert_eq!(a, b);
    }

    #[test]
    fn graph_break_penalty_grows_with_scale() {
        let small = graph_break_penalty(8, 10e-6, 2e-6);
        let large = graph_break_penalty(384, 10e-6, 2e-6);
        assert!(large > small);
    }
}
