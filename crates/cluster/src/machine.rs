//! Machine constants for the systems the paper measures on.
//!
//! All values come from the paper itself or the public system documentation
//! it cites: Frontier compute nodes carry 4 AMD MI250X (8 GCDs) and four
//! 25 GB/s Slingshot NICs; the Orion parallel filesystem sustains ~10 TB/s;
//! the node-local SSDs aggregate to ~35 TB/s across the system.

/// Static description of a machine used by the scaling models.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MachineSpec {
    /// Human-readable machine name.
    pub name: &'static str,
    /// Total number of compute nodes in the system.
    pub total_nodes: usize,
    /// Independently schedulable accelerator devices per node
    /// (GCDs on Frontier: 2 per MI250X, 8 per node).
    pub gpus_per_node: usize,
    /// Injection bandwidth per NIC, bytes/second.
    pub nic_bandwidth: f64,
    /// Number of NICs per node.
    pub nics_per_node: usize,
    /// Small-message network latency, seconds (per hop, approximate).
    pub net_latency: f64,
    /// Small-message latency between devices of the same node (Infinity
    /// Fabric / NVLink hop), seconds — approximate, well below the NIC
    /// latency, which is what makes intra-node collective hops cheap.
    pub intra_node_latency: f64,
    /// Aggregate parallel-filesystem write bandwidth, bytes/second.
    pub pfs_bandwidth: f64,
    /// Aggregate node-local SSD write bandwidth (whole system), bytes/second.
    pub node_ssd_bandwidth: f64,
    /// Intra-node link bandwidth between devices (Infinity Fabric / NVLink),
    /// bytes/second per direction.
    pub intra_node_bandwidth: f64,
    /// Fraction of total injection bandwidth usable through the global
    /// fabric bisection (dragonfly-style tapering).
    pub bisection_fraction: f64,
}

impl MachineSpec {
    /// Total GPUs (GCDs) when running on `nodes` nodes.
    pub fn gpus(&self, nodes: usize) -> usize {
        nodes * self.gpus_per_node
    }

    /// Total injection bandwidth of `nodes` nodes, bytes/second.
    pub fn injection_bandwidth(&self, nodes: usize) -> f64 {
        nodes as f64 * self.nics_per_node as f64 * self.nic_bandwidth
    }

    /// Usable global bisection bandwidth for `nodes` nodes, bytes/second.
    pub fn bisection_bandwidth(&self, nodes: usize) -> f64 {
        self.injection_bandwidth(nodes) * self.bisection_fraction
    }
}

/// ORNL Frontier (Top-1, June 2024 Top500 — the paper's primary system).
pub const FRONTIER: MachineSpec = MachineSpec {
    name: "Frontier",
    total_nodes: 9408,
    gpus_per_node: 8,
    nic_bandwidth: 25.0e9,
    nics_per_node: 4,
    net_latency: 2.0e-6,
    intra_node_latency: 0.7e-6,
    pfs_bandwidth: 10.0e12,
    node_ssd_bandwidth: 35.0e12,
    intra_node_bandwidth: 50.0e9,
    bisection_fraction: 0.30,
};

/// ORNL Summit (the paper's 2019 baseline FOM system).
pub const SUMMIT: MachineSpec = MachineSpec {
    name: "Summit",
    total_nodes: 4608,
    gpus_per_node: 6,
    nic_bandwidth: 12.5e9,
    nics_per_node: 2,
    net_latency: 1.5e-6,
    intra_node_latency: 0.8e-6,
    pfs_bandwidth: 2.5e12,
    node_ssd_bandwidth: 7.4e12,
    intra_node_bandwidth: 25.0e9,
    bisection_fraction: 0.50,
};

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn frontier_matches_paper_constants() {
        // §IV-B: "max possible throughput of a single HPE Slingshot NIC at
        // 25 GB/s"; §IV-B: Orion ~10 TB/s; local SSDs 35 TB/s aggregate.
        assert_eq!(FRONTIER.nic_bandwidth, 25.0e9);
        assert_eq!(FRONTIER.pfs_bandwidth, 10.0e12);
        assert_eq!(FRONTIER.node_ssd_bandwidth, 35.0e12);
        // §IV-A: 36 864 GPUs across 9216 nodes → 4 GPUs = 8 GCDs per node.
        let gcds = FRONTIER.gpus(9216);
        let expect = 36_864usize * 2;
        assert_eq!(gcds, expect);
        assert_eq!(FRONTIER.gpus_per_node, 8);
    }

    #[test]
    fn injection_bandwidth_scales_linearly() {
        let one = FRONTIER.injection_bandwidth(1);
        assert_eq!(one, 100.0e9);
        assert_eq!(FRONTIER.injection_bandwidth(100), 100.0 * one);
    }

    #[test]
    fn bisection_below_injection() {
        for nodes in [16usize, 1024, 9408] {
            assert!(FRONTIER.bisection_bandwidth(nodes) < FRONTIER.injection_bandwidth(nodes));
        }
    }

    #[test]
    fn intra_node_hops_are_cheaper_than_the_fabric() {
        for m in [FRONTIER, SUMMIT] {
            assert!(m.intra_node_latency < m.net_latency, "{}", m.name);
            assert!(
                m.intra_node_bandwidth >= m.nic_bandwidth,
                "{}: device links beat one NIC",
                m.name
            );
        }
    }

    #[test]
    fn summit_is_smaller_than_frontier() {
        assert!(SUMMIT.injection_bandwidth(4608) < FRONTIER.injection_bandwidth(9408));
        let (s, f) = (SUMMIT.pfs_bandwidth, FRONTIER.pfs_bandwidth);
        assert!(s < f);
    }
}
