//! Open-socket accounting for collective bootstrap.
//!
//! §IV-D of the paper: *"The all-to-all communication between PyTorch DDP
//! ranks using the N/RCCL backend hits system limitations on the possible
//! number of open sockets beyond 100 nodes."* We reproduce the failure mode:
//! the socket-based bootstrap opens a mesh of connections per node, and the
//! per-process/node descriptor budget caps the world size.

/// Per-node socket/file-descriptor budget and bootstrap topology.
#[derive(Debug, Clone, Copy)]
pub struct SocketBudget {
    /// Sockets a node may hold open (ulimit-style budget shared by the
    /// ranks on that node).
    pub per_node_limit: usize,
    /// Ranks per node participating in the collective.
    pub ranks_per_node: usize,
    /// Sockets each rank pair needs (NCCL opens several rings/channels).
    pub sockets_per_pair: usize,
}

impl SocketBudget {
    /// A configuration calibrated so that bootstrap fails just beyond 100
    /// nodes with 4 training ranks per node — the regime the paper reports.
    pub fn frontier_nccl_default() -> Self {
        Self {
            per_node_limit: 65_536,
            ranks_per_node: 4,
            sockets_per_pair: 40,
        }
    }

    /// Sockets one node must hold for a world of `nodes` nodes.
    ///
    /// Every local rank talks to every remote rank in the bootstrap
    /// all-to-all: `ranks_per_node · (total_ranks − ranks_per_node)` pairs
    /// terminate on this node.
    pub fn sockets_needed(&self, nodes: usize) -> usize {
        let total_ranks = nodes * self.ranks_per_node;
        let remote = total_ranks.saturating_sub(self.ranks_per_node);
        self.ranks_per_node * remote * self.sockets_per_pair
    }

    /// Attempt a bootstrap; `Err` carries the shortfall diagnostics.
    pub fn try_bootstrap(&self, nodes: usize) -> Result<(), SocketExhaustion> {
        let needed = self.sockets_needed(nodes);
        if needed > self.per_node_limit {
            Err(SocketExhaustion {
                nodes,
                needed,
                limit: self.per_node_limit,
            })
        } else {
            Ok(())
        }
    }

    /// Largest node count that still bootstraps.
    pub fn max_nodes(&self) -> usize {
        let mut lo = 1usize;
        let mut hi = 1_000_000usize;
        while lo < hi {
            let mid = (lo + hi).div_ceil(2);
            if self.try_bootstrap(mid).is_ok() {
                lo = mid;
            } else {
                hi = mid - 1;
            }
        }
        lo
    }
}

/// Bootstrap failure: the node ran out of socket descriptors.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SocketExhaustion {
    /// World size attempted, nodes.
    pub nodes: usize,
    /// Sockets one node would need.
    pub needed: usize,
    /// The per-node budget.
    pub limit: usize,
}

impl std::fmt::Display for SocketExhaustion {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "socket exhaustion at {} nodes: need {} sockets per node, limit {}",
            self.nodes, self.needed, self.limit
        )
    }
}

impl std::error::Error for SocketExhaustion {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_budget_fails_just_beyond_100_nodes() {
        let b = SocketBudget::frontier_nccl_default();
        assert!(b.try_bootstrap(96).is_ok());
        assert!(b.try_bootstrap(100).is_ok());
        assert!(b.try_bootstrap(128).is_err());
        let max = b.max_nodes();
        assert!(
            (100..128).contains(&max),
            "paper: limit hits beyond 100 nodes, got {max}"
        );
    }

    #[test]
    fn socket_need_grows_quadratically_with_nothing_shared() {
        let b = SocketBudget::frontier_nccl_default();
        let n50 = b.sockets_needed(50);
        let n100 = b.sockets_needed(100);
        // Linear in nodes for a fixed node's viewpoint.
        assert!(n100 > 19 * n50 / 10 && n100 < 21 * n50 / 10);
    }

    #[test]
    fn single_node_needs_no_remote_sockets() {
        let b = SocketBudget::frontier_nccl_default();
        assert_eq!(b.sockets_needed(1), 0);
        assert!(b.try_bootstrap(1).is_ok());
    }

    #[test]
    fn error_is_displayable() {
        let b = SocketBudget::frontier_nccl_default();
        let err = b.try_bootstrap(1000).unwrap_err();
        let msg = err.to_string();
        assert!(msg.contains("1000 nodes"));
    }
}
