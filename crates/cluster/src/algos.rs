//! Explicit send/recv schedules for the collective algorithms.
//!
//! Every collective the workflow runs — broadcast, gather, allgather and
//! the two allreduce paths — is described here as a *pure* per-rank plan:
//! given `(world size, root, rank)` the functions below return which
//! peers a rank talks to, in which order, and how much payload each
//! message carries. Both backends consume the same plans:
//!
//! - [`crate::comm::Communicator`] **executes** them over in-process
//!   channels (moving real payloads);
//! - [`crate::collective::SimNetComm`] **prices** them against its
//!   [`crate::collective::NetModel`] (walking the identical plan, hop by
//!   hop, with intra- vs inter-node costs).
//!
//! Because executor and pricer share one schedule source, the analytic
//! α-β models in [`crate::collectives`] are the *measured* modelled cost
//! — asserted within tolerance by `tests/alpha_beta_model.rs`.
//!
//! # Algorithms
//!
//! | pattern   | [`CollectiveAlgo::Linear`]          | [`CollectiveAlgo::Log`]                   |
//! |-----------|-------------------------------------|-------------------------------------------|
//! | broadcast | root fan-out, `p-1` messages        | binomial tree, depth `⌈log₂ p⌉`           |
//! | gather    | fan-in to root, `p-1` messages      | binomial tree (mirrored), depth `⌈log₂ p⌉`|
//! | allgather | gather + broadcast (pays twice)     | Bruck dissemination, `⌈log₂ p⌉` rounds    |
//! | allreduce | ring reduce-scatter + allgather     | ring for large buffers; for small ones a  |
//! |           |                                     | Bruck allgather of the raw contributions  |
//! |           |                                     | + local reduction in canonical ring order |
//!
//! # The canonical reduction order
//!
//! Floating-point addition is not associative, so "which algorithm ran"
//! could leak into the numerics. It must not: the workflow asserts
//! bit-identical parameters across ranks, backends *and* algorithms. The
//! canonical order is the ring reduce-scatter order the transport has
//! always used — for chunk `c` (chunks of `len.div_ceil(p)` elements):
//!
//! ```text
//! acc = x_c;  acc = x_{(c+j) mod p} ⊕ acc   for j = 1 .. p-1
//! ```
//!
//! (each step reduces the *incoming* partial into the *local*
//! contribution, exactly like the ring's `reduce(dst_local, incoming)`).
//! The small-buffer log-depth allreduce gathers all raw contributions
//! and replays this exact order locally ([`reduce_in_ring_order`]), so
//! it is bit-identical to the ring by construction.

/// Which collective algorithm family a communicator world runs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CollectiveAlgo {
    /// Linear root fan-out/fan-in: the historical transport. O(p)
    /// messages on the root's timeline; allgather pays gather **plus**
    /// broadcast. Kept as the legacy baseline the scaling sweeps compare
    /// against.
    Linear,
    /// Log-depth schedules: binomial-tree broadcast/gather, Bruck
    /// dissemination allgather, and a size-selected allreduce (ring for
    /// large buffers, allgather-based for small ones). The default.
    Log,
}

impl CollectiveAlgo {
    /// Short label for benchmark output.
    pub fn label(&self) -> &'static str {
        match self {
            CollectiveAlgo::Linear => "linear",
            CollectiveAlgo::Log => "log",
        }
    }
}

/// Buffers at or below this size take the log-depth allreduce path under
/// [`CollectiveAlgo::Log`]; larger ones keep the bandwidth-optimal ring.
/// The selection is a pure function of `(buffer bytes, world size)`, so
/// every rank of a world picks the same path. DDP gradient buckets
/// (default 8192 f32 = 32 KiB) stay on the ring; per-iteration control
/// collectives (go/no-go scalars, loss means, radiation merges) go
/// log-depth.
pub const SMALL_ALLREDUCE_BYTES: usize = 4096;

/// One rank's role in a binomial tree rooted at `root` (broadcast runs
/// it parent→children, gather runs it children→parent).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TreePlan {
    /// The peer one hop closer to the root (`None` at the root).
    pub parent: Option<usize>,
    /// Peers one hop further from the root, in broadcast send order
    /// (largest subtree first), each with the size in ranks of the
    /// subtree hanging off that edge.
    pub children: Vec<(usize, usize)>,
}

/// The binomial-tree plan for `rank` in a world of `size` rooted at
/// `root`. Tree depth is `⌈log₂ size⌉`; the root has `⌈log₂ size⌉`
/// children, so the root's serialized sends are the critical path.
pub fn binomial_plan(size: usize, root: usize, rank: usize) -> TreePlan {
    assert!(size > 0 && root < size && rank < size);
    let vrank = (rank + size - root) % size;
    // Parent: clear the lowest set bit of the virtual rank.
    let mut mask = 1usize;
    let mut parent_mask = 0usize;
    let mut parent = None;
    while mask < size {
        if vrank & mask != 0 {
            parent = Some(((vrank ^ mask) + root) % size);
            parent_mask = mask;
            break;
        }
        mask <<= 1;
    }
    // Children: every bit below the parent bit (the whole range for the
    // root) that lands inside the world.
    let top = if parent.is_some() {
        parent_mask
    } else {
        size.next_power_of_two()
    };
    let mut children = Vec::new();
    let mut m = top >> 1;
    while m > 0 {
        let child_v = vrank + m;
        if child_v < size {
            let subtree = m.min(size - child_v);
            children.push(((child_v + root) % size, subtree));
        }
        m >>= 1;
    }
    TreePlan { parent, children }
}

/// One round of the Bruck (dissemination) allgather.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BruckRound {
    /// Peer this rank sends its held prefix to: `(rank - 2^k) mod p`.
    pub to: usize,
    /// Peer this rank receives from: `(rank + 2^k) mod p`.
    pub from: usize,
    /// Rank-blocks carried by the message (`min(2^k, p - 2^k)`).
    pub blocks: usize,
}

/// The `⌈log₂ size⌉` Bruck rounds for `rank`. After round `k` a rank
/// holds `min(2^{k+1}, p)` consecutive blocks starting at its own; the
/// total blocks received across rounds is exactly `p - 1`.
pub fn bruck_rounds(size: usize, rank: usize) -> Vec<BruckRound> {
    assert!(size > 0 && rank < size);
    let mut rounds = Vec::new();
    let mut dist = 1usize;
    while dist < size {
        rounds.push(BruckRound {
            to: (rank + size - dist) % size,
            from: (rank + dist) % size,
            blocks: dist.min(size - dist),
        });
        dist <<= 1;
    }
    rounds
}

/// Reduce rank-indexed full contributions into `out` in the canonical
/// ring reduce-scatter order (see the module docs): for chunk `c`,
/// `acc = x_c`, then `acc = reduce(x_{(c+j) mod p}, acc)` for
/// `j = 1..p-1`, where `reduce(dst, src)` folds `src` into `dst` exactly
/// like the ring's step does. Bit-identical to the ring allreduce for
/// any reduction closure.
pub fn reduce_in_ring_order<T, F>(contribs: &[Vec<T>], out: &mut [T], mut reduce: F)
where
    T: Copy,
    F: FnMut(&mut T, T),
{
    let p = contribs.len();
    let len = out.len();
    if p == 0 || len == 0 {
        return;
    }
    if p == 1 {
        out.copy_from_slice(&contribs[0][..len]);
        return;
    }
    let chunk = len.div_ceil(p);
    for c in 0..p {
        let s = (c * chunk).min(len);
        let e = ((c + 1) * chunk).min(len);
        for i in s..e {
            let mut acc = contribs[c][i];
            for j in 1..p {
                let mut v = contribs[(c + j) % p][i];
                reduce(&mut v, acc);
                acc = v;
            }
            out[i] = acc;
        }
    }
}

/// True when a `bytes`-sized allreduce takes the log-depth (allgather)
/// path under [`CollectiveAlgo::Log`].
pub fn allreduce_goes_log(algo: CollectiveAlgo, bytes: usize) -> bool {
    algo == CollectiveAlgo::Log && bytes <= SMALL_ALLREDUCE_BYTES
}

// ---------------------------------------------------------------------------
// Pricing events: the serialized message timeline of one rank.
// ---------------------------------------------------------------------------

/// One priced message on a rank's serialized timeline: the peer it moves
/// to/from and the payload it carries. A rank's modelled cost for a
/// collective is the sum of its events' hop costs; the world's modelled
/// cost is the per-rank maximum (the critical path), which for these
/// schedules lands on the root / is uniform across ranks.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MsgEvent {
    /// The other endpoint of the hop (send target or receive source).
    pub peer: usize,
    /// Payload bytes on the wire.
    pub bytes: u64,
}

/// Broadcast events for `rank`: its serialized sends. Linear: the root
/// fans out `p-1` messages; tree: each rank forwards to its binomial
/// children (the root's `⌈log₂ p⌉` sends are the critical path).
pub fn broadcast_events(
    algo: CollectiveAlgo,
    size: usize,
    root: usize,
    rank: usize,
    bytes: u64,
) -> Vec<MsgEvent> {
    if size <= 1 {
        return Vec::new();
    }
    match algo {
        CollectiveAlgo::Linear => {
            if rank == root {
                (0..size)
                    .filter(|&d| d != root)
                    .map(|d| MsgEvent { peer: d, bytes })
                    .collect()
            } else {
                Vec::new()
            }
        }
        CollectiveAlgo::Log => binomial_plan(size, root, rank)
            .children
            .iter()
            .map(|&(child, _)| MsgEvent { peer: child, bytes })
            .collect(),
    }
}

/// Gather events for `rank`, with `bytes` contributed per rank. The
/// receiving side serializes the fan-in, so the root's events are its
/// receives (linear: `p-1` single blocks; tree: `⌈log₂ p⌉` subtree
/// messages totalling `p-1` blocks) and a non-root rank's single event
/// is its subtree send to the parent.
pub fn gather_events(
    algo: CollectiveAlgo,
    size: usize,
    root: usize,
    rank: usize,
    bytes: u64,
) -> Vec<MsgEvent> {
    if size <= 1 {
        return Vec::new();
    }
    match algo {
        CollectiveAlgo::Linear => {
            if rank == root {
                (0..size)
                    .filter(|&s| s != root)
                    .map(|s| MsgEvent { peer: s, bytes })
                    .collect()
            } else {
                vec![MsgEvent { peer: root, bytes }]
            }
        }
        CollectiveAlgo::Log => {
            let plan = binomial_plan(size, root, rank);
            match plan.parent {
                None => plan
                    .children
                    .iter()
                    .map(|&(child, subtree)| MsgEvent {
                        peer: child,
                        bytes: bytes.saturating_mul(subtree as u64),
                    })
                    .collect(),
                Some(parent) => {
                    let subtree: usize = 1 + plan.children.iter().map(|&(_, s)| s).sum::<usize>();
                    vec![MsgEvent {
                        peer: parent,
                        bytes: bytes.saturating_mul(subtree as u64),
                    }]
                }
            }
        }
    }
}

/// Allgather events for `rank`, with `bytes` contributed per rank.
/// Linear is gather-to-0 plus broadcast-from-0 (the historical
/// double-priced path); log is the single-phase Bruck schedule —
/// `⌈log₂ p⌉` sends per rank carrying `p-1` blocks in total.
pub fn allgather_events(
    algo: CollectiveAlgo,
    size: usize,
    rank: usize,
    bytes: u64,
) -> Vec<MsgEvent> {
    if size <= 1 {
        return Vec::new();
    }
    match algo {
        CollectiveAlgo::Linear => {
            let mut ev = gather_events(algo, size, 0, rank, bytes);
            ev.extend(broadcast_events(
                algo,
                size,
                0,
                rank,
                bytes.saturating_mul(size as u64),
            ));
            ev
        }
        CollectiveAlgo::Log => bruck_rounds(size, rank)
            .into_iter()
            .map(|r| MsgEvent {
                peer: r.to,
                bytes: bytes.saturating_mul(r.blocks as u64),
            })
            .collect(),
    }
}

/// Ring-allreduce events for `rank`: `2(p-1)` chunk sends to the next
/// neighbour, with the real (remainder-absorbing) chunk bounds of an
/// `elems × elem_size` buffer — byte-exact with what the executor moves.
pub fn ring_allreduce_events(
    size: usize,
    rank: usize,
    elems: usize,
    elem_size: usize,
) -> Vec<MsgEvent> {
    if size <= 1 || elems == 0 {
        return Vec::new();
    }
    let chunk = elems.div_ceil(size);
    let bounds = |i: usize| -> u64 {
        let s = (i * chunk).min(elems);
        let e = ((i + 1) * chunk).min(elems);
        ((e - s) * elem_size) as u64
    };
    let next = (rank + 1) % size;
    let mut events = Vec::with_capacity(2 * (size - 1));
    for step in 0..size - 1 {
        events.push(MsgEvent {
            peer: next,
            bytes: bounds((rank + size - step) % size),
        });
    }
    for step in 0..size - 1 {
        events.push(MsgEvent {
            peer: next,
            bytes: bounds((rank + 1 + size - step) % size),
        });
    }
    events
}

/// Allreduce events for `rank` over an `elems × elem_size` buffer under
/// `algo` — the same path selection the executor makes: ring unless the
/// buffer is small and the algo is log-depth, in which case the cost is
/// a Bruck allgather of full contributions.
pub fn allreduce_events(
    algo: CollectiveAlgo,
    size: usize,
    rank: usize,
    elems: usize,
    elem_size: usize,
) -> Vec<MsgEvent> {
    if allreduce_goes_log(algo, elems * elem_size) {
        allgather_events(CollectiveAlgo::Log, size, rank, (elems * elem_size) as u64)
    } else {
        ring_allreduce_events(size, rank, elems, elem_size)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn depth(size: usize) -> usize {
        (usize::BITS - (size - 1).leading_zeros()) as usize // ⌈log₂ size⌉
    }

    #[test]
    fn binomial_tree_is_consistent_for_any_size_and_root() {
        for size in 1..=17 {
            for root in [0, size / 2, size - 1] {
                let plans: Vec<TreePlan> =
                    (0..size).map(|r| binomial_plan(size, root, r)).collect();
                // Exactly one root, and it is `root`.
                assert!(plans[root].parent.is_none());
                assert_eq!(
                    plans.iter().filter(|p| p.parent.is_none()).count(),
                    1,
                    "size {size} root {root}"
                );
                // Every child edge is mirrored by the child's parent edge.
                let mut covered = 1usize;
                for (r, plan) in plans.iter().enumerate() {
                    for &(c, subtree) in &plan.children {
                        assert_eq!(plans[c].parent, Some(r), "size {size} root {root}");
                        assert!(subtree >= 1);
                        covered += 1;
                    }
                }
                assert_eq!(covered, size, "every rank hangs off exactly one edge");
                // Subtree sizes account for every rank below each edge.
                for plan in &plans {
                    let sub: usize = plan.children.iter().map(|&(_, s)| s).sum();
                    if plan.parent.is_none() {
                        assert_eq!(sub + 1, size);
                    }
                }
                if size > 1 {
                    assert_eq!(plans[root].children.len(), depth(size), "root degree");
                }
            }
        }
    }

    #[test]
    fn bruck_rounds_cover_all_blocks() {
        for size in 1..=17 {
            for rank in 0..size {
                let rounds = bruck_rounds(size, rank);
                if size == 1 {
                    assert!(rounds.is_empty());
                    continue;
                }
                assert_eq!(rounds.len(), depth(size));
                let total: usize = rounds.iter().map(|r| r.blocks).sum();
                assert_eq!(total, size - 1, "size {size} rank {rank}");
            }
        }
    }

    #[test]
    fn ring_order_reduction_matches_a_hand_trace() {
        // p = 3, len = 3 (one element per chunk): chunk c is reduced as
        // x_{c+2} + (x_{c+1} + x_c) (indices mod 3).
        let contribs = vec![
            vec![1.0f64, 10.0, 100.0],
            vec![2.0, 20.0, 200.0],
            vec![4.0, 40.0, 400.0],
        ];
        let mut out = vec![0.0; 3];
        reduce_in_ring_order(&contribs, &mut out, |a, b| *a += b);
        assert_eq!(out, vec![7.0, 70.0, 700.0]);
    }

    #[test]
    fn log_events_have_log_depth_linear_events_do_not() {
        for p in [16usize, 64] {
            let root_lin = broadcast_events(CollectiveAlgo::Linear, p, 0, 0, 0).len();
            let root_log = broadcast_events(CollectiveAlgo::Log, p, 0, 0, 0).len();
            assert_eq!(root_lin, p - 1);
            assert_eq!(root_log, depth(p));
            let ag_log = allgather_events(CollectiveAlgo::Log, p, 3, 8);
            assert_eq!(ag_log.len(), depth(p));
            let wire: u64 = ag_log.iter().map(|e| e.bytes).sum();
            assert_eq!(wire, 8 * (p as u64 - 1), "Bruck moves each block once");
            // The linear allgather pays the payload twice (gather + bcast).
            let ag_lin = allgather_events(CollectiveAlgo::Linear, p, 0, 8);
            let wire_lin: u64 = ag_lin.iter().map(|e| e.bytes).sum();
            assert!(wire_lin > 2 * 8 * (p as u64 - 1) / 2);
        }
    }

    #[test]
    fn ring_events_match_the_alpha_beta_ring_model() {
        // len divisible by p: per-rank wire bytes = 2(p-1)/p · buffer.
        let (p, elems, esz) = (8usize, 64usize, 4usize);
        let ev = ring_allreduce_events(p, 5, elems, esz);
        assert_eq!(ev.len(), 2 * (p - 1));
        let wire: u64 = ev.iter().map(|e| e.bytes).sum();
        assert_eq!(wire, (2 * (p - 1) * elems * esz / p) as u64);
    }

    #[test]
    fn allreduce_path_selection_is_size_driven() {
        assert!(allreduce_goes_log(CollectiveAlgo::Log, 48));
        assert!(!allreduce_goes_log(CollectiveAlgo::Log, 32 * 1024));
        assert!(!allreduce_goes_log(CollectiveAlgo::Linear, 48));
    }
}
