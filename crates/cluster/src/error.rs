//! Typed communication errors for the fault-tolerant paths.
//!
//! The legacy collectives panic on protocol violations — correct for a
//! healthy world, useless once ranks are allowed to die. The
//! fault-tolerant layer (`try_recv_timeout`, the `FtComm` exchange in
//! `as-core`) reports these conditions as values instead, so callers can
//! retry, declare a peer dead, or degrade gracefully.

/// Errors surfaced by fault-tolerant communicator operations.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CommError {
    /// No matching message arrived before the per-op deadline.
    Timeout {
        /// Rank the receive was waiting on.
        source: usize,
        /// Message tag the receive was matching.
        tag: u64,
    },
    /// The peer's endpoint is gone (channel disconnected mid-receive).
    Disconnected {
        /// Rank whose endpoint disappeared.
        source: usize,
    },
    /// Rank is already marked dead in the world health mask.
    RankDead {
        /// The dead rank.
        rank: usize,
    },
    /// A matched message carried an unexpected payload type (protocol bug,
    /// not a fault — still reported as a value on the tolerant path).
    TypeMismatch {
        /// Rank the message came from.
        source: usize,
        /// Tag the message carried.
        tag: u64,
    },
    /// The backend does not implement this fault-tolerant operation.
    Unsupported(&'static str),
}

impl std::fmt::Display for CommError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CommError::Timeout { source, tag } => {
                write!(f, "timed out waiting on rank {source} tag {tag:#x}")
            }
            CommError::Disconnected { source } => {
                write!(f, "rank {source} endpoint disconnected")
            }
            CommError::RankDead { rank } => write!(f, "rank {rank} is marked dead"),
            CommError::TypeMismatch { source, tag } => {
                write!(f, "payload type mismatch from rank {source} tag {tag:#x}")
            }
            CommError::Unsupported(op) => write!(f, "backend does not support {op}"),
        }
    }
}

impl std::error::Error for CommError {}
