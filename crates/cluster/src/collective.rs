//! The pluggable collective-communication layer.
//!
//! Every inter-rank exchange in the workflow — the PIC halo exchange and
//! particle migration (`as_pic::domain`), the producer's per-window
//! offset allgather and radiation allreduce (`as_core::producer`), the
//! consumer group's go/no-go, sample broadcast and loss mean
//! (`as_core::consumer`), and the DDP gradient buckets (`as_nn::ddp`) —
//! goes through the [`Collective`] trait defined here instead of a
//! concrete transport.
//! Two backends ship:
//!
//! - [`ChannelComm`] (an alias for [`crate::comm::Communicator`]): the
//!   in-process thread/channel transport. Bit-exact with the historical
//!   direct-`Communicator` paths — the trait impl is pure delegation.
//! - [`SimNetComm`]: wraps any backend and charges every operation the
//!   latency/bandwidth cost of a modelled fabric ([`NetModel`], derived
//!   from [`crate::netsim`] max-min fair sharing and the
//!   [`crate::machine`] presets), optionally injecting the modelled
//!   delay as real wall time. Payloads are untouched, so numerics are
//!   **bit-identical** to the wrapped backend — only timing (and the
//!   modelled-seconds telemetry) changes. This is what lets one box
//!   rehearse a Frontier-class fabric (`NetModel::frontier_paper`).
//!
//! Workflow code is generic over `C: Collective`; concrete backends are
//! constructed only at the topology roots (`as_core::workflow`, tests,
//! benches). The backend choice is a config knob
//! (`as_core::config::CommBackend`), and the non-blocking DDP bucket
//! worker (`as_nn::ddp::OverlappedGradSync`) relies on the `Send + Sync`
//! supertrait bounds to share an endpoint with its comm thread.
//!
//! # Pricing = the executed schedule
//!
//! [`SimNetComm`] does not hand-write per-collective formulas. It walks
//! the same [`crate::algos`] message schedule the wrapped executor runs
//! — this rank's serialized sends for the algorithm in force
//! ([`Collective::algo`]) — and charges each hop its [`NetModel`] cost:
//! intra- or inter-node latency plus payload over the corresponding
//! fair-share bandwidth, decided by the [`NodeMap`] placement. Costs
//! accumulate on a **per-rank** timeline; the world-wide
//! [`Collective::modelled_comm_seconds`] is the *maximum* over ranks —
//! critical-path semantics, so a binomial broadcast costs the root's
//! `⌈log₂ p⌉` serialized hops, not the `p-1` total messages. The α-β
//! models in [`crate::collectives`] are therefore the measured cost, a
//! correspondence asserted within tolerance by `tests/alpha_beta_model.rs`.
//!
//! # Bytes accounting
//!
//! [`Collective::world_bytes_sent`] exposes the world-wide payload
//! traffic counter (slice-typed sends and the sized allreduce paths are
//! counted automatically; for opaque structured messages the sender
//! declares the serialized size via [`Collective::account_payload`] or,
//! for broadcast fan-outs, [`Collective::account_broadcast_payload`] —
//! the consumer's sample broadcast does). The workflow surfaces the
//! counter per run in `WorkflowReport` and `BENCH_workflow.json`, along
//! with the [`Collective::world_messages_sent`] hop counter.

use crate::algos::{
    allgather_events, allreduce_events, broadcast_events, gather_events, CollectiveAlgo, MsgEvent,
};
use crate::comm::{CommWorld, Communicator};
use crate::error::CommError;
use crate::machine::{MachineSpec, FRONTIER, SUMMIT};
use crate::netsim::NetSim;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

/// The in-process backend: the thread/channel [`Communicator`] itself.
///
/// Construct worlds with [`crate::comm::CommWorld::new`] (or
/// [`crate::comm::CommWorld::with_algo`] to select the collective
/// schedules); the trait impl below delegates every method to the
/// inherent implementation, so code written against `Collective` is
/// bit-exact with code that called the `Communicator` directly.
pub type ChannelComm = Communicator;

/// An MPI-like collective-communication endpoint: one rank's handle in a
/// fixed-size world.
///
/// The contract mirrors MPI semantics as used by this workflow:
///
/// - collectives are **blocking** and must be invoked by every rank of
///   the world in the same order (the callers keep their collective
///   schedules deterministic — e.g. the DropSteps consumer broadcasts
///   the freshest-step decision so all ranks skip the same windows);
/// - point-to-point messages are matched by `(source, tag)` and are FIFO
///   per `(source, tag)` pair, which is what lets back-to-back ring
///   all-reduces (the DDP gradient buckets of
///   `as_nn::ddp::sync_gradients_bucketed`) pipeline without barriers;
/// - the reduction order inside each all-reduce is deterministic,
///   identical on every rank **and identical across algorithm choices**
///   (the log-depth small-buffer path replays the canonical ring order —
///   see [`crate::algos`]), so post-reduce buffers are bit-identical
///   across ranks, across backends and across algorithms.
///
/// `Send + Sync + 'static` is part of the trait: endpoints move into
/// rank threads, and an endpoint may be shared (behind `Arc`) with a
/// dedicated comm-worker thread (`as_nn::ddp::OverlappedGradSync`) —
/// with the usual MPI caveat that only one thread at a time may drive a
/// given endpoint's collective schedule.
pub trait Collective: Send + Sync + 'static {
    /// This endpoint's rank in `0..size`.
    fn rank(&self) -> usize;

    /// Number of ranks in the world.
    fn size(&self) -> usize;

    /// The collective algorithm family this world executes (and that the
    /// pricing layer charges for).
    fn algo(&self) -> CollectiveAlgo;

    /// Synchronise all ranks.
    fn barrier(&self);

    /// Send `value` to rank `dest` with message tag `tag` (eager, never
    /// blocks). Opaque payload: not counted by the traffic counter.
    fn send<T: Send + 'static>(&self, dest: usize, tag: u64, value: T);

    /// Send a typed vector, accounting its payload size in the world
    /// traffic counter.
    fn send_vec<T: Send + 'static>(&self, dest: usize, tag: u64, value: Vec<T>);

    /// Blocking receive of a `T` from `source` with tag `tag`.
    fn recv<T: Send + 'static>(&self, source: usize, tag: u64) -> T;

    /// Broadcast from `root`; every rank returns the value. Only `root`
    /// may pass `Some`.
    fn broadcast<T: Clone + Send + 'static>(&self, root: usize, value: Option<T>) -> T;

    /// Gather every rank's value at `root`; `Some(values)` on root
    /// (indexed by rank), `None` elsewhere.
    fn gather<T: Send + 'static>(&self, root: usize, value: T) -> Option<Vec<T>>;

    /// All-gather: every rank contributes `value` and receives the
    /// rank-indexed vector of all contributions.
    fn allgather<T: Clone + Send + 'static>(&self, value: T) -> Vec<T>;

    /// In-place all-reduce (sum) over an `f32` buffer.
    fn allreduce_sum_f32(&self, buf: &mut [f32]);

    /// In-place all-reduce (sum) over an `f64` buffer.
    fn allreduce_sum_f64(&self, buf: &mut [f64]);

    /// In-place all-reduce (element-wise max) over an `f64` buffer.
    fn allreduce_max_f64(&self, buf: &mut [f64]);

    /// Scalar sum all-reduce convenience.
    fn allreduce_scalar_f64(&self, v: f64) -> f64 {
        let mut buf = [v];
        self.allreduce_sum_f64(&mut buf);
        buf[0]
    }

    /// Total payload bytes sent across the whole world so far (slice-
    /// typed sends and sized allreduce paths; monotone, shared by all
    /// ranks).
    fn world_bytes_sent(&self) -> u64;

    /// Total point-to-point messages sent across the whole world so far,
    /// collective-internal hops included (monotone, shared by all
    /// ranks). The message count is what separates the linear and
    /// log-depth schedules when payloads are small.
    fn world_messages_sent(&self) -> u64;

    /// Record `bytes` of payload carried by opaque messages this rank is
    /// about to send (a `broadcast`/`gather` of structured values whose
    /// heap size the type system hides from the transport). Backends add
    /// it to the world traffic counter; modelled fabrics also charge the
    /// bandwidth cost. Purely local — never communicates — so calling it
    /// on one rank cannot desynchronise a collective schedule.
    fn account_payload(&self, bytes: u64);

    /// Record the payload of an opaque broadcast from `root` that ships
    /// `bytes_per_copy` serialized bytes to each receiving rank. The
    /// world traffic counter grows by `bytes_per_copy × (size-1)` (one
    /// delivered copy per non-root rank, independent of algorithm);
    /// modelled fabrics charge the *broadcast algorithm's* bandwidth on
    /// the caller's timeline — `⌈log₂ p⌉` copies down the binomial tree
    /// instead of the linear `p-1`. Call on the broadcasting rank,
    /// alongside the `broadcast` itself.
    fn account_broadcast_payload(&self, root: usize, bytes_per_copy: u64) {
        let _ = root;
        self.account_payload(bytes_per_copy.saturating_mul(self.size() as u64 - 1));
    }

    /// Seconds of fabric time the backend's network model has charged so
    /// far — the maximum over all ranks' serialized timelines (the
    /// modelled critical path). `0.0` for backends without a model (the
    /// in-process channels are "free"); [`SimNetComm`] accumulates the
    /// modelled latency/bandwidth cost here whether or not it injects
    /// the delay as wall time.
    fn modelled_comm_seconds(&self) -> f64 {
        0.0
    }

    /// Record staging **data-plane** traffic: `wire_bytes` crossed the
    /// SST-style staging stream at a modelled cost of `model_seconds`
    /// (computed by the caller from the staging layer's
    /// `DataPlane::read_time` — this crate stays independent of the
    /// staging crate, so the hook takes the raw numbers). Kept on
    /// counters **separate** from the collective traffic
    /// ([`Collective::world_bytes_sent`] /
    /// [`Collective::modelled_comm_seconds`]): the control-plane
    /// accounting stays bit-identical whether or not window payloads are
    /// priced. Default is a no-op — the in-process backend moves real
    /// bytes and needs no model; [`SimNetComm`] accumulates the cost on
    /// a per-rank data-plane timeline and, scaled by
    /// `NetModel::time_scale`, injects it as wall time. Purely local —
    /// never communicates.
    fn account_dataplane(&self, wire_bytes: u64, model_seconds: f64) {
        let _ = (wire_bytes, model_seconds);
    }

    /// World-wide modelled staging data-plane seconds charged so far —
    /// the maximum over ranks' serialized data-plane timelines, mirroring
    /// the critical-path semantics of
    /// [`Collective::modelled_comm_seconds`] but on the separate
    /// data-plane clock. `0.0` for backends without a model.
    fn modelled_dataplane_seconds(&self) -> f64 {
        0.0
    }

    /// World-wide staging wire bytes recorded via
    /// [`Collective::account_dataplane`] (monotone, shared by all
    /// ranks). `0` for backends without a model.
    fn dataplane_bytes(&self) -> u64 {
        0
    }

    // --- fault tolerance (optional capability) ---------------------------
    //
    // Backends built over a fault-armed world (`CommWorld::with_faults`)
    // override these; the defaults describe a world where nothing ever
    // dies, which keeps every legacy backend valid unchanged. Note that
    // `barrier` has no tolerant variant — fault-tolerant schedules must
    // not barrier once a rank may be dead.

    /// True when the transport tolerates rank deaths (suppressed sends,
    /// liveness tracking) instead of panicking.
    fn faults_armed(&self) -> bool {
        false
    }

    /// Mark `rank` dead in the shared world-health mask. No-op on
    /// backends without liveness tracking.
    fn mark_dead(&self, rank: usize) {
        let _ = rank;
    }

    /// Bitmask of ranks not marked dead (bit `r` set ⇔ rank `r` alive).
    fn alive_mask(&self) -> u64 {
        if self.size() >= 64 {
            u64::MAX
        } else {
            (1u64 << self.size()) - 1
        }
    }

    /// True when `rank` has been marked dead.
    fn is_rank_dead(&self, rank: usize) -> bool {
        rank < 64 && self.alive_mask() & (1 << rank) == 0
    }

    /// Deadline-bounded receive reporting failure as a value:
    /// `Ok(Some(v))` on a match, `Ok(None)` on timeout, a typed
    /// [`CommError`] on dead peer / teardown / payload mismatch. The
    /// default declines — only fault-aware backends implement it.
    fn try_recv_timeout<T: Send + 'static>(
        &self,
        source: usize,
        tag: u64,
        timeout: Duration,
    ) -> Result<Option<T>, CommError> {
        let _ = (source, tag, timeout);
        Err(CommError::Unsupported("try_recv_timeout"))
    }

    /// `(dropped, delayed, duplicated)` injected message-fault counters
    /// (zeros when no injector is installed).
    fn injected_fault_counts(&self) -> (u64, u64, u64) {
        (0, 0, 0)
    }
}

impl Collective for Communicator {
    fn rank(&self) -> usize {
        Communicator::rank(self)
    }
    fn size(&self) -> usize {
        Communicator::size(self)
    }
    fn algo(&self) -> CollectiveAlgo {
        Communicator::algo(self)
    }
    fn barrier(&self) {
        Communicator::barrier(self)
    }
    fn send<T: Send + 'static>(&self, dest: usize, tag: u64, value: T) {
        Communicator::send(self, dest, tag, value)
    }
    fn send_vec<T: Send + 'static>(&self, dest: usize, tag: u64, value: Vec<T>) {
        Communicator::send_vec(self, dest, tag, value)
    }
    fn recv<T: Send + 'static>(&self, source: usize, tag: u64) -> T {
        Communicator::recv(self, source, tag)
    }
    fn broadcast<T: Clone + Send + 'static>(&self, root: usize, value: Option<T>) -> T {
        Communicator::broadcast(self, root, value)
    }
    fn gather<T: Send + 'static>(&self, root: usize, value: T) -> Option<Vec<T>> {
        Communicator::gather(self, root, value)
    }
    fn allgather<T: Clone + Send + 'static>(&self, value: T) -> Vec<T> {
        Communicator::allgather(self, value)
    }
    fn allreduce_sum_f32(&self, buf: &mut [f32]) {
        Communicator::allreduce_sum_f32(self, buf)
    }
    fn allreduce_sum_f64(&self, buf: &mut [f64]) {
        Communicator::allreduce_sum_f64(self, buf)
    }
    fn allreduce_max_f64(&self, buf: &mut [f64]) {
        Communicator::allreduce_max_f64(self, buf)
    }
    fn allreduce_scalar_f64(&self, v: f64) -> f64 {
        Communicator::allreduce_scalar_f64(self, v)
    }
    fn world_bytes_sent(&self) -> u64 {
        Communicator::world_bytes_sent(self)
    }
    fn world_messages_sent(&self) -> u64 {
        Communicator::world_messages_sent(self)
    }
    fn account_payload(&self, bytes: u64) {
        Communicator::account_payload(self, bytes)
    }
    fn faults_armed(&self) -> bool {
        Communicator::faults_armed(self)
    }
    fn mark_dead(&self, rank: usize) {
        Communicator::mark_dead(self, rank)
    }
    fn alive_mask(&self) -> u64 {
        Communicator::alive_mask(self)
    }
    fn is_rank_dead(&self, rank: usize) -> bool {
        Communicator::is_rank_dead(self, rank)
    }
    fn try_recv_timeout<T: Send + 'static>(
        &self,
        source: usize,
        tag: u64,
        timeout: Duration,
    ) -> Result<Option<T>, CommError> {
        Communicator::try_recv_timeout(self, source, tag, timeout)
    }
    fn injected_fault_counts(&self) -> (u64, u64, u64) {
        Communicator::injected_fault_counts(self)
    }
}

/// Rank → modelled-node placement map for a [`NetModel`].
///
/// An empty map (the default) places every rank on its own node — all
/// hops are inter-node, which is the conservative legacy behaviour. A
/// populated map prices hops between co-located ranks at the intra-node
/// link instead of the fabric, which is what makes the `InterNode`
/// placement (producer slabs and learner ranks on distinct modelled
/// nodes) cost more fabric time than the packed `IntraNode` one.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct NodeMap {
    node_of: Vec<usize>,
}

impl NodeMap {
    /// Dense placement: `ranks` ranks filled `per_node` to a node, with
    /// node ids starting at `node_offset` (so two groups — producers and
    /// learners — can occupy provably distinct modelled nodes).
    pub fn placed(ranks: usize, per_node: usize, node_offset: usize) -> Self {
        let per_node = per_node.max(1);
        Self {
            node_of: (0..ranks).map(|r| node_offset + r / per_node).collect(),
        }
    }

    /// The modelled node hosting `rank`. Ranks beyond the map (and every
    /// rank of an empty map) live on their own private node.
    pub fn node_of(&self, rank: usize) -> usize {
        self.node_of.get(rank).copied().unwrap_or(usize::MAX - rank)
    }

    /// True when both ranks share a modelled node.
    pub fn same_node(&self, a: usize, b: usize) -> bool {
        self.node_of(a) == self.node_of(b)
    }

    /// Number of distinct modelled nodes in the map (0 for an empty map).
    pub fn node_count(&self) -> usize {
        let mut nodes: Vec<usize> = self.node_of.clone();
        nodes.sort_unstable();
        nodes.dedup();
        nodes.len()
    }
}

/// Per-rank fabric cost model behind [`SimNetComm`]: per-message
/// latencies plus fair-share bandwidths — one (latency, bandwidth) pair
/// for inter-node hops and one for intra-node hops, selected per message
/// by the [`NodeMap`] placement — with a knob for how much of the
/// modelled delay is injected as real wall time.
///
/// The inter-node bandwidth is **not** a free parameter:
/// [`NetModel::from_machine`] runs the machine's NIC + tapered-bisection
/// topology through the [`crate::netsim`] max-min fair allocation with
/// all ranks transmitting at once — the steady-state fair share under
/// full contention is the rate every inter-node message is charged at.
/// That reproduces the congestion knee the paper's scaling studies hinge
/// on: below the bisection saturation point the NIC share limits, beyond
/// it the bisection does.
#[derive(Debug, Clone, PartialEq)]
pub struct NetModel {
    /// Seconds charged per inter-node message (per hop aggregate).
    pub latency: f64,
    /// Fair-share inter-node bandwidth per rank under full contention,
    /// bytes/second.
    pub bytes_per_second: f64,
    /// Seconds charged per intra-node message.
    pub intra_latency: f64,
    /// Intra-node link bandwidth, bytes/second.
    pub intra_bytes_per_second: f64,
    /// Fraction of the modelled delay injected as real wall time
    /// (`thread::sleep`). `1.0` delays in "real" modelled time, `0.0`
    /// records the cost without sleeping (numerics are unaffected either
    /// way — delays never change payloads).
    pub time_scale: f64,
    /// Rank → modelled node placement; empty = every rank its own node.
    pub nodes: NodeMap,
}

impl NetModel {
    /// A placement-free model: every hop pays `latency` +
    /// `bytes/bytes_per_second`, like a fabric with no intra-node
    /// shortcut. The analytic α-β comparisons use this.
    pub fn uniform(latency: f64, bytes_per_second: f64, time_scale: f64) -> Self {
        Self {
            latency,
            bytes_per_second: bytes_per_second.max(1.0),
            intra_latency: latency,
            intra_bytes_per_second: bytes_per_second.max(1.0),
            time_scale,
            nodes: NodeMap::default(),
        }
    }

    /// Derive the fair-share model for `ranks` ranks placed
    /// `ranks_per_node` per node on `machine` (NIC shared by the same
    /// `ranks_per_node`), by running the max-min fair [`crate::netsim`]
    /// allocation on the machine's NIC + bisection topology with every
    /// rank transmitting concurrently.
    pub fn from_machine(
        machine: &MachineSpec,
        ranks: usize,
        ranks_per_node: usize,
        time_scale: f64,
    ) -> Self {
        Self::from_machine_placed(
            machine,
            ranks,
            ranks_per_node,
            ranks_per_node,
            0,
            time_scale,
        )
    }

    /// [`NetModel::from_machine`] with the placement degrees of freedom
    /// exposed: this group's ranks are packed `group_ranks_per_node` per
    /// modelled node starting at `node_offset`, while each NIC is shared
    /// by `nic_share_ranks` ranks (the *machine-wide* occupancy — on a
    /// node hosting both producer and learner ranks the NIC is split
    /// among all of them, not just this group's share).
    pub fn from_machine_placed(
        machine: &MachineSpec,
        ranks: usize,
        group_ranks_per_node: usize,
        nic_share_ranks: usize,
        node_offset: usize,
        time_scale: f64,
    ) -> Self {
        let ranks = ranks.max(1);
        let group_ranks_per_node = group_ranks_per_node.max(1);
        let nic_share_ranks = nic_share_ranks.max(1);
        let nodes = ranks.div_ceil(group_ranks_per_node);
        let egress_cap =
            machine.nic_bandwidth * machine.nics_per_node as f64 / nic_share_ranks as f64;
        let fair_rate = NetSim::contended_fair_share(
            ranks,
            egress_cap,
            machine.bisection_bandwidth(nodes).max(1.0),
        );
        Self {
            latency: machine.net_latency,
            bytes_per_second: fair_rate.max(1.0),
            intra_latency: machine.intra_node_latency,
            intra_bytes_per_second: machine.intra_node_bandwidth.max(1.0),
            time_scale,
            nodes: NodeMap::placed(ranks, group_ranks_per_node, node_offset),
        }
    }

    /// The paper's primary fabric: Frontier, 8 GCD-ranks per node,
    /// modelled delays injected at full scale.
    pub fn frontier_paper(ranks: usize) -> Self {
        Self::from_machine(&FRONTIER, ranks, FRONTIER.gpus_per_node, 1.0)
    }

    /// The paper's 2019 baseline fabric: Summit, 6 ranks per node.
    pub fn summit_paper(ranks: usize) -> Self {
        Self::from_machine(&SUMMIT, ranks, SUMMIT.gpus_per_node, 1.0)
    }

    /// Modelled cost of one message of `bytes` payload between `from`
    /// and `to`: the intra-node latency/bandwidth when the placement
    /// co-locates them, the fabric fair share otherwise.
    pub fn hop_cost(&self, from: usize, to: usize, bytes: u64) -> f64 {
        if self.nodes.same_node(from, to) {
            self.intra_latency + bytes as f64 / self.intra_bytes_per_second
        } else {
            self.latency + bytes as f64 / self.bytes_per_second
        }
    }

    /// Modelled cost of `messages` inter-node messages moving `bytes`
    /// payload (placement-blind; kept for coarse charges like
    /// [`Collective::account_payload`]).
    pub fn delay_seconds(&self, messages: u64, bytes: u64) -> f64 {
        messages as f64 * self.latency + bytes as f64 / self.bytes_per_second
    }
}

/// World-shared staging data-plane accounting: the critical-path clock
/// and wire-byte counter behind [`Collective::account_dataplane`]. One
/// instance is shared by every [`SimNetComm`] endpoint of a world
/// (created by [`SimNetComm::wrap_world`]), exactly like the
/// collective-side `world_max_nanos` counter — but deliberately a
/// *separate* object, so pricing the staging stream can never perturb
/// the collective traffic counters the cross-backend bit-identity tests
/// pin down.
#[derive(Debug, Default)]
pub struct DataPlaneClock {
    /// World-wide maximum of the per-rank data-plane timelines, nanos.
    max_nanos: AtomicU64,
    /// World-wide staging wire bytes.
    bytes: AtomicU64,
}

/// A [`Collective`] backend wrapped with a modelled network fabric.
///
/// Every operation walks the [`crate::algos`] schedule the wrapped
/// executor runs and charges this rank's serialized hops their
/// [`NetModel`] cost (accumulated per rank; the world-wide
/// [`Collective::modelled_comm_seconds`] is the per-rank maximum — the
/// modelled critical path — and, scaled by `NetModel::time_scale`, the
/// cost is injected as real wall time), then delegates to the inner
/// backend unchanged. Because payloads never change, **numerics are
/// bit-identical to the wrapped backend** — asserted end-to-end by the
/// cross-backend workflow determinism test.
///
/// Charging is byte-accurate for the sized operations (the allreduce
/// paths and `send_vec`), shallow-size-accurate for typed single-value
/// collectives (`broadcast`/`gather`/`allgather` price
/// `size_of::<T>()`), and latency-only for opaque `send`s; callers that
/// know the heap size of an opaque payload declare it via
/// [`Collective::account_payload`] /
/// [`Collective::account_broadcast_payload`].
pub struct SimNetComm<C: Collective> {
    inner: C,
    model: NetModel,
    /// This endpoint's serialized modelled nanoseconds.
    local_nanos: AtomicU64,
    /// World-wide maximum of the per-rank timelines (shared by all
    /// endpoints): the modelled critical path.
    world_max_nanos: Arc<AtomicU64>,
    /// This endpoint's serialized modelled data-plane nanoseconds.
    dp_local_nanos: AtomicU64,
    /// World-shared data-plane clock and wire-byte counter.
    dp_clock: Arc<DataPlaneClock>,
}

impl<C: Collective> SimNetComm<C> {
    /// Wrap one endpoint. All endpoints of a world must share the
    /// `world_max_nanos` counter and the `dp_clock` — use
    /// [`SimNetComm::world`] unless you are assembling a world by hand.
    pub fn new(
        inner: C,
        model: NetModel,
        world_max_nanos: Arc<AtomicU64>,
        dp_clock: Arc<DataPlaneClock>,
    ) -> Self {
        Self {
            inner,
            model,
            local_nanos: AtomicU64::new(0),
            world_max_nanos,
            dp_local_nanos: AtomicU64::new(0),
            dp_clock,
        }
    }

    /// The wrapped backend.
    pub fn inner(&self) -> &C {
        &self.inner
    }

    /// The fabric model in force.
    pub fn model(&self) -> &NetModel {
        &self.model
    }

    /// Charge `secs` of modelled fabric time to this rank's timeline,
    /// fold it into the world maximum, and optionally sleep it off.
    fn charge_seconds(&self, secs: f64) {
        if secs <= 0.0 {
            return;
        }
        let nanos = (secs * 1e9).round() as u64;
        let local = self.local_nanos.fetch_add(nanos, Ordering::Relaxed) + nanos;
        self.world_max_nanos.fetch_max(local, Ordering::Relaxed);
        if self.model.time_scale > 0.0 {
            let wall = secs * self.model.time_scale;
            if wall > 0.0 {
                std::thread::sleep(std::time::Duration::from_secs_f64(wall));
            }
        }
    }

    /// Sum the hop costs of this rank's events and charge them as one
    /// quantum (one f64 sum → at most 1 ns of quantization per
    /// collective, which is what keeps the α-β comparison tests tight).
    fn charge_events(&self, events: &[MsgEvent]) {
        let rank = self.inner.rank();
        let secs: f64 = events
            .iter()
            .map(|e| self.model.hop_cost(rank, e.peer, e.bytes))
            .sum();
        self.charge_seconds(secs);
    }
}

impl SimNetComm<ChannelComm> {
    /// Build a full world of `size` in-process endpoints wrapped with
    /// `model`, sharing one modelled-critical-path counter. The
    /// executors run the default log-depth schedules; use
    /// [`SimNetComm::world_with_algo`] to select.
    pub fn world(size: usize, model: NetModel) -> Vec<SimNetComm<ChannelComm>> {
        Self::world_with_algo(size, model, CollectiveAlgo::Log)
    }

    /// [`SimNetComm::world`] with an explicit collective algorithm.
    pub fn world_with_algo(
        size: usize,
        model: NetModel,
        algo: CollectiveAlgo,
    ) -> Vec<SimNetComm<ChannelComm>> {
        Self::wrap_world(CommWorld::with_algo(size, algo).into_endpoints(), model)
    }

    /// Wrap an externally built world (e.g. a fault-armed
    /// [`CommWorld::with_faults`]) with `model`, sharing one
    /// modelled-critical-path counter across the returned endpoints.
    pub fn wrap_world(
        endpoints: Vec<ChannelComm>,
        model: NetModel,
    ) -> Vec<SimNetComm<ChannelComm>> {
        let nanos = Arc::new(AtomicU64::new(0));
        let dp = Arc::new(DataPlaneClock::default());
        endpoints
            .into_iter()
            .map(|c| SimNetComm::new(c, model.clone(), nanos.clone(), dp.clone()))
            .collect()
    }
}

impl<C: Collective> Collective for SimNetComm<C> {
    fn rank(&self) -> usize {
        self.inner.rank()
    }
    fn size(&self) -> usize {
        self.inner.size()
    }
    fn algo(&self) -> CollectiveAlgo {
        self.inner.algo()
    }
    fn barrier(&self) {
        // One fabric round-trip's worth of latency, charged uniformly.
        self.charge_seconds(self.model.latency);
        self.inner.barrier()
    }
    fn send<T: Send + 'static>(&self, dest: usize, tag: u64, value: T) {
        self.charge_seconds(self.model.hop_cost(self.rank(), dest, 0));
        self.inner.send(dest, tag, value)
    }
    fn send_vec<T: Send + 'static>(&self, dest: usize, tag: u64, value: Vec<T>) {
        let bytes = (value.len() * std::mem::size_of::<T>()) as u64;
        self.charge_seconds(self.model.hop_cost(self.rank(), dest, bytes));
        self.inner.send_vec(dest, tag, value)
    }
    fn recv<T: Send + 'static>(&self, source: usize, tag: u64) -> T {
        // The sender carries the cost; receiving is the matching wait.
        self.inner.recv(source, tag)
    }
    fn broadcast<T: Clone + Send + 'static>(&self, root: usize, value: Option<T>) -> T {
        let ev = broadcast_events(
            self.algo(),
            self.size(),
            root,
            self.rank(),
            std::mem::size_of::<T>() as u64,
        );
        self.charge_events(&ev);
        self.inner.broadcast(root, value)
    }
    fn gather<T: Send + 'static>(&self, root: usize, value: T) -> Option<Vec<T>> {
        let ev = gather_events(
            self.algo(),
            self.size(),
            root,
            self.rank(),
            std::mem::size_of::<T>() as u64,
        );
        self.charge_events(&ev);
        self.inner.gather(root, value)
    }
    fn allgather<T: Clone + Send + 'static>(&self, value: T) -> Vec<T> {
        let ev = allgather_events(
            self.algo(),
            self.size(),
            self.rank(),
            std::mem::size_of::<T>() as u64,
        );
        self.charge_events(&ev);
        self.inner.allgather(value)
    }
    fn allreduce_sum_f32(&self, buf: &mut [f32]) {
        let ev = allreduce_events(self.algo(), self.size(), self.rank(), buf.len(), 4);
        self.charge_events(&ev);
        self.inner.allreduce_sum_f32(buf)
    }
    fn allreduce_sum_f64(&self, buf: &mut [f64]) {
        let ev = allreduce_events(self.algo(), self.size(), self.rank(), buf.len(), 8);
        self.charge_events(&ev);
        self.inner.allreduce_sum_f64(buf)
    }
    fn allreduce_max_f64(&self, buf: &mut [f64]) {
        let ev = allreduce_events(self.algo(), self.size(), self.rank(), buf.len(), 8);
        self.charge_events(&ev);
        self.inner.allreduce_max_f64(buf)
    }
    fn world_bytes_sent(&self) -> u64 {
        self.inner.world_bytes_sent()
    }
    fn world_messages_sent(&self) -> u64 {
        self.inner.world_messages_sent()
    }
    fn account_payload(&self, bytes: u64) {
        self.charge_seconds(bytes as f64 / self.model.bytes_per_second);
        self.inner.account_payload(bytes);
    }
    fn account_broadcast_payload(&self, root: usize, bytes_per_copy: u64) {
        // Bandwidth only — the accompanying `broadcast` call already
        // charged the per-hop latencies of the same schedule.
        let rank = self.rank();
        let ev = broadcast_events(self.algo(), self.size(), root, rank, bytes_per_copy);
        let secs: f64 = ev
            .iter()
            .map(|e| {
                self.model.hop_cost(rank, e.peer, e.bytes) - self.model.hop_cost(rank, e.peer, 0)
            })
            .sum();
        self.charge_seconds(secs);
        // The world traffic counter stays algorithm-independent: one
        // delivered copy per non-root rank.
        self.inner
            .account_payload(bytes_per_copy.saturating_mul(self.size() as u64 - 1));
    }
    fn modelled_comm_seconds(&self) -> f64 {
        self.world_max_nanos.load(Ordering::Relaxed) as f64 * 1e-9
    }
    fn account_dataplane(&self, wire_bytes: u64, model_seconds: f64) {
        self.dp_clock.bytes.fetch_add(wire_bytes, Ordering::Relaxed);
        if model_seconds <= 0.0 {
            return;
        }
        let nanos = (model_seconds * 1e9).round() as u64;
        let local = self.dp_local_nanos.fetch_add(nanos, Ordering::Relaxed) + nanos;
        self.dp_clock.max_nanos.fetch_max(local, Ordering::Relaxed);
        if self.model.time_scale > 0.0 {
            let wall = model_seconds * self.model.time_scale;
            if wall > 0.0 {
                std::thread::sleep(std::time::Duration::from_secs_f64(wall));
            }
        }
    }
    fn modelled_dataplane_seconds(&self) -> f64 {
        self.dp_clock.max_nanos.load(Ordering::Relaxed) as f64 * 1e-9
    }
    fn dataplane_bytes(&self) -> u64 {
        self.dp_clock.bytes.load(Ordering::Relaxed)
    }
    fn faults_armed(&self) -> bool {
        self.inner.faults_armed()
    }
    fn mark_dead(&self, rank: usize) {
        self.inner.mark_dead(rank)
    }
    fn alive_mask(&self) -> u64 {
        self.inner.alive_mask()
    }
    fn is_rank_dead(&self, rank: usize) -> bool {
        self.inner.is_rank_dead(rank)
    }
    fn try_recv_timeout<T: Send + 'static>(
        &self,
        source: usize,
        tag: u64,
        timeout: Duration,
    ) -> Result<Option<T>, CommError> {
        // The matching wait is the receiver's; senders carried the cost.
        self.inner.try_recv_timeout(source, tag, timeout)
    }
    fn injected_fault_counts(&self) -> (u64, u64, u64) {
        self.inner.injected_fault_counts()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::thread;

    fn run_world<C, F>(endpoints: Vec<C>, f: F)
    where
        C: Collective,
        F: Fn(C) + Send + Sync + Copy + 'static,
    {
        let handles: Vec<_> = endpoints
            .into_iter()
            .map(|c| thread::spawn(move || f(c)))
            .collect();
        for h in handles {
            h.join().expect("rank thread panicked");
        }
    }

    fn fast_model() -> NetModel {
        NetModel::uniform(1e-7, 1e9, 0.0) // record-only: tests stay fast
    }

    #[test]
    fn channel_comm_world_works_through_the_trait() {
        fn collective_roundtrip<C: Collective>(c: C) {
            let all = c.allgather(c.rank() as u64);
            assert_eq!(all, vec![0, 1, 2]);
            let mut buf = vec![c.rank() as f32 + 1.0; 5];
            c.allreduce_sum_f32(&mut buf);
            assert!(buf.iter().all(|&v| (v - 6.0).abs() < 1e-6));
            let s = c.allreduce_scalar_f64(2.0);
            assert!((s - 6.0).abs() < 1e-12);
            c.barrier();
        }
        run_world(CommWorld::new(3).into_endpoints(), collective_roundtrip);
        run_world(SimNetComm::world(3, fast_model()), collective_roundtrip);
    }

    #[test]
    fn simnet_matches_channel_comm_bit_for_bit() {
        // Same seed-free deterministic payloads through both backends:
        // the reduced buffers must be bit-identical.
        fn reduce<C: Collective>(c: C) -> Vec<f64> {
            let mut buf: Vec<f64> = (0..17)
                .map(|i| (c.rank() as f64 + 1.0) * (i as f64 + 0.37).sin())
                .collect();
            c.allreduce_sum_f64(&mut buf);
            buf
        }
        let run = |eps: Vec<Box<dyn FnOnce() -> Vec<f64> + Send>>| -> Vec<Vec<f64>> {
            let hs: Vec<_> = eps.into_iter().map(thread::spawn).collect();
            hs.into_iter().map(|h| h.join().unwrap()).collect()
        };
        let chan: Vec<Box<dyn FnOnce() -> Vec<f64> + Send>> = CommWorld::new(2)
            .into_endpoints()
            .into_iter()
            .map(|c| Box::new(move || reduce(c)) as _)
            .collect();
        let sim: Vec<Box<dyn FnOnce() -> Vec<f64> + Send>> = SimNetComm::world(2, fast_model())
            .into_iter()
            .map(|c| Box::new(move || reduce(c)) as _)
            .collect();
        let a = run(chan);
        let b = run(sim);
        for (ra, rb) in a.iter().zip(&b) {
            for (x, y) in ra.iter().zip(rb) {
                assert_eq!(x.to_bits(), y.to_bits(), "backends must agree bitwise");
            }
        }
    }

    #[test]
    fn simnet_accumulates_modelled_seconds_and_bytes() {
        run_world(SimNetComm::world(2, fast_model()), |c| {
            let mut buf = vec![c.rank() as f32; 1024];
            c.allreduce_sum_f32(&mut buf);
            if c.rank() == 0 {
                c.send_vec(1, 7, vec![0u8; 4096]);
            } else {
                let _: Vec<u8> = c.recv(0, 7);
            }
            c.barrier();
            assert!(c.modelled_comm_seconds() > 0.0, "fabric time must accrue");
            assert!(c.world_bytes_sent() >= 4096, "payload bytes still counted");
            assert!(c.world_messages_sent() > 0, "hops are counted");
        });
    }

    #[test]
    fn dataplane_charges_stay_off_the_collective_counters() {
        run_world(SimNetComm::world(2, fast_model()), |c| {
            let comm_secs = c.modelled_comm_seconds();
            let comm_bytes = c.world_bytes_sent();
            c.account_dataplane(1_000_000, 0.25);
            c.account_dataplane(500_000, 0.25);
            // The data-plane charge never leaks into the collective
            // accounting (read before the barrier adds its own cost).
            assert_eq!(c.modelled_comm_seconds(), comm_secs);
            assert_eq!(c.world_bytes_sent(), comm_bytes);
            c.barrier();
            // Data-plane traffic accrues on its own world-shared clock...
            assert_eq!(c.dataplane_bytes(), 2 * 1_500_000, "both ranks charged");
            // ...with critical-path semantics, not sum: both ranks
            // charged 0.5 s in parallel, so the clock reads 0.5, not 1.0.
            assert!((c.modelled_dataplane_seconds() - 0.5).abs() < 1e-9);
        });
    }

    #[test]
    fn channel_comm_ignores_dataplane_charges() {
        run_world(CommWorld::new(2).into_endpoints(), |c| {
            c.account_dataplane(1 << 30, 10.0);
            assert_eq!(c.dataplane_bytes(), 0);
            assert_eq!(c.modelled_dataplane_seconds(), 0.0);
            c.barrier();
        });
    }

    #[test]
    fn modelled_seconds_are_the_critical_path_not_the_sum() {
        // A broadcast from rank 0 in a 4-rank world under the tree algo:
        // the root's serialized share is ⌈log₂ 4⌉ = 2 hops; leaves send
        // nothing. The world counter must be the root's timeline (2α),
        // not the 3α world total.
        let model = NetModel::uniform(1e-3, 1e12, 0.0);
        run_world(SimNetComm::world(4, model), |c| {
            let _ = if c.rank() == 0 {
                c.broadcast(0, Some(0u8))
            } else {
                c.broadcast::<u8>(0, None)
            };
            c.barrier();
            let secs = c.modelled_comm_seconds();
            // 2 root hops + 1 barrier latency, ±quantization.
            assert!((secs - 3e-3).abs() < 1e-6, "got {secs}");
        });
    }

    #[test]
    fn internode_placement_prices_hops_differently() {
        let mut model = NetModel::uniform(2e-6, 1e9, 0.0);
        model.intra_latency = 0.5e-6;
        model.intra_bytes_per_second = 50e9;
        model.nodes = NodeMap::placed(4, 2, 0);
        // Ranks 0,1 share node 0; ranks 2,3 share node 1.
        assert!(model.nodes.same_node(0, 1));
        assert!(!model.nodes.same_node(1, 2));
        assert_eq!(model.nodes.node_count(), 2);
        let close = model.hop_cost(0, 1, 1_000_000);
        let far = model.hop_cost(1, 2, 1_000_000);
        assert!(close < far, "intra-node hops must be cheaper");
        // Offset placements occupy disjoint nodes.
        let learners = NodeMap::placed(4, 2, 2);
        for p in 0..4 {
            for l in 0..4 {
                assert_ne!(
                    model.nodes.node_of(p),
                    learners.node_of(l),
                    "offset groups may not share a node"
                );
            }
        }
    }

    #[test]
    fn frontier_model_reflects_the_machine_constants() {
        let m = NetModel::frontier_paper(8);
        assert_eq!(m.latency, FRONTIER.net_latency);
        assert_eq!(m.intra_latency, FRONTIER.intra_node_latency);
        // 8 ranks on one node share 4×25 GB/s NICs: 12.5 GB/s fair share,
        // and one node's bisection slice cannot beat its injection.
        assert!(m.bytes_per_second <= 12.5e9 + 1.0);
        assert!(m.bytes_per_second > 1.0e9);
        // One node's worth of ranks all land on modelled node 0.
        assert_eq!(m.nodes.node_count(), 1);
        // More ranks through the same tapered bisection → smaller share.
        let big = NetModel::from_machine(&FRONTIER, 512, 8, 1.0);
        assert!(big.bytes_per_second <= m.bytes_per_second);
    }

    #[test]
    fn delay_model_is_latency_plus_bandwidth() {
        let m = NetModel::uniform(2e-6, 1e9, 0.0);
        let d = m.delay_seconds(3, 1_000_000);
        assert!((d - (6e-6 + 1e-3)).abs() < 1e-12);
    }
}
