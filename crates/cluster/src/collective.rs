//! The pluggable collective-communication layer.
//!
//! Every inter-rank exchange in the workflow — the PIC halo exchange and
//! particle migration (`as_pic::domain`), the producer's per-window
//! offset allgather and radiation allreduce (`as_core::producer`), the
//! consumer group's go/no-go, sample broadcast and loss mean
//! (`as_core::consumer`), and the DDP gradient buckets (`as_nn::ddp`) —
//! goes through the [`Collective`] trait defined here instead of a
//! concrete transport.
//! Two backends ship:
//!
//! - [`ChannelComm`] (an alias for [`crate::comm::Communicator`]): the
//!   in-process thread/channel transport. Bit-exact with the historical
//!   direct-`Communicator` paths — the trait impl is pure delegation.
//! - [`SimNetComm`]: wraps any backend and charges every operation the
//!   latency/bandwidth cost of a modelled fabric ([`NetModel`], derived
//!   from [`crate::netsim::NetSpec`] max-min fair sharing and the
//!   [`crate::machine`] presets), optionally injecting the modelled
//!   delay as real wall time. Payloads are untouched, so numerics are
//!   **bit-identical** to the wrapped backend — only timing (and the
//!   modelled-seconds telemetry) changes. This is what lets one box
//!   rehearse a Frontier-class fabric (`NetModel::frontier_paper`).
//!
//! Workflow code is generic over `C: Collective`; concrete backends are
//! constructed only at the topology roots (`as_core::workflow`, tests,
//! benches). The backend choice is a config knob
//! (`as_core::config::CommBackend`), and the non-blocking DDP bucket
//! worker (`as_nn::ddp::OverlappedGradSync`) relies on the `Send + Sync`
//! supertrait bounds to share an endpoint with its comm thread.
//!
//! # Bytes accounting
//!
//! [`Collective::world_bytes_sent`] exposes the world-wide payload
//! traffic counter (slice-typed sends and the ring collectives are
//! counted automatically; for opaque structured messages the sender
//! declares the serialized size via [`Collective::account_payload`] —
//! the consumer's sample broadcast does). The workflow surfaces the
//! counter per run in `WorkflowReport` and `BENCH_workflow.json`.

use crate::comm::{CommWorld, Communicator};
use crate::machine::{MachineSpec, FRONTIER, SUMMIT};
use crate::netsim::{Flow, NetSim, NetSpec};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// The in-process backend: the thread/channel [`Communicator`] itself.
///
/// Construct worlds with [`crate::comm::CommWorld::new`]; the trait impl
/// below delegates every method to the inherent implementation, so code
/// written against `Collective` is bit-exact with code that called the
/// `Communicator` directly.
pub type ChannelComm = Communicator;

/// An MPI-like collective-communication endpoint: one rank's handle in a
/// fixed-size world.
///
/// The contract mirrors MPI semantics as used by this workflow:
///
/// - collectives are **blocking** and must be invoked by every rank of
///   the world in the same order (the callers keep their collective
///   schedules deterministic — e.g. the DropSteps consumer broadcasts
///   the freshest-step decision so all ranks skip the same windows);
/// - point-to-point messages are matched by `(source, tag)` and are FIFO
///   per `(source, tag)` pair, which is what lets back-to-back ring
///   all-reduces (the DDP gradient buckets of
///   `as_nn::ddp::sync_gradients_bucketed`) pipeline without barriers;
/// - the reduction order inside each all-reduce is deterministic and
///   identical on every rank, so post-reduce buffers are bit-identical
///   across ranks and across backends.
///
/// `Send + Sync + 'static` is part of the trait: endpoints move into
/// rank threads, and an endpoint may be shared (behind `Arc`) with a
/// dedicated comm-worker thread (`as_nn::ddp::OverlappedGradSync`) —
/// with the usual MPI caveat that only one thread at a time may drive a
/// given endpoint's collective schedule.
pub trait Collective: Send + Sync + 'static {
    /// This endpoint's rank in `0..size`.
    fn rank(&self) -> usize;

    /// Number of ranks in the world.
    fn size(&self) -> usize;

    /// Synchronise all ranks.
    fn barrier(&self);

    /// Send `value` to rank `dest` with message tag `tag` (eager, never
    /// blocks). Opaque payload: not counted by the traffic counter.
    fn send<T: Send + 'static>(&self, dest: usize, tag: u64, value: T);

    /// Send a typed vector, accounting its payload size in the world
    /// traffic counter.
    fn send_vec<T: Send + 'static>(&self, dest: usize, tag: u64, value: Vec<T>);

    /// Blocking receive of a `T` from `source` with tag `tag`.
    fn recv<T: Send + 'static>(&self, source: usize, tag: u64) -> T;

    /// Broadcast from `root`; every rank returns the value. Only `root`
    /// may pass `Some`.
    fn broadcast<T: Clone + Send + 'static>(&self, root: usize, value: Option<T>) -> T;

    /// Gather every rank's value at `root`; `Some(values)` on root
    /// (indexed by rank), `None` elsewhere.
    fn gather<T: Send + 'static>(&self, root: usize, value: T) -> Option<Vec<T>>;

    /// All-gather: every rank contributes `value` and receives the
    /// rank-indexed vector of all contributions.
    fn allgather<T: Clone + Send + 'static>(&self, value: T) -> Vec<T>;

    /// In-place all-reduce (sum) over an `f32` buffer.
    fn allreduce_sum_f32(&self, buf: &mut [f32]);

    /// In-place all-reduce (sum) over an `f64` buffer.
    fn allreduce_sum_f64(&self, buf: &mut [f64]);

    /// In-place all-reduce (element-wise max) over an `f64` buffer.
    fn allreduce_max_f64(&self, buf: &mut [f64]);

    /// Scalar sum all-reduce convenience.
    fn allreduce_scalar_f64(&self, v: f64) -> f64 {
        let mut buf = [v];
        self.allreduce_sum_f64(&mut buf);
        buf[0]
    }

    /// Total payload bytes sent across the whole world so far (slice-
    /// typed sends and ring collectives; monotone, shared by all ranks).
    fn world_bytes_sent(&self) -> u64;

    /// Record `bytes` of payload carried by opaque messages this rank is
    /// about to send (a `broadcast`/`gather` of structured values whose
    /// heap size the type system hides from the transport). Backends add
    /// it to the world traffic counter; modelled fabrics also charge the
    /// bandwidth cost. Purely local — never communicates — so calling it
    /// on one rank cannot desynchronise a collective schedule.
    fn account_payload(&self, bytes: u64);

    /// Seconds of fabric time the backend's network model has charged so
    /// far, world-wide. `0.0` for backends without a model (the
    /// in-process channels are "free"); [`SimNetComm`] accumulates the
    /// modelled latency/bandwidth cost here whether or not it injects
    /// the delay as wall time.
    fn modelled_comm_seconds(&self) -> f64 {
        0.0
    }
}

impl Collective for Communicator {
    fn rank(&self) -> usize {
        Communicator::rank(self)
    }
    fn size(&self) -> usize {
        Communicator::size(self)
    }
    fn barrier(&self) {
        Communicator::barrier(self)
    }
    fn send<T: Send + 'static>(&self, dest: usize, tag: u64, value: T) {
        Communicator::send(self, dest, tag, value)
    }
    fn send_vec<T: Send + 'static>(&self, dest: usize, tag: u64, value: Vec<T>) {
        Communicator::send_vec(self, dest, tag, value)
    }
    fn recv<T: Send + 'static>(&self, source: usize, tag: u64) -> T {
        Communicator::recv(self, source, tag)
    }
    fn broadcast<T: Clone + Send + 'static>(&self, root: usize, value: Option<T>) -> T {
        Communicator::broadcast(self, root, value)
    }
    fn gather<T: Send + 'static>(&self, root: usize, value: T) -> Option<Vec<T>> {
        Communicator::gather(self, root, value)
    }
    fn allgather<T: Clone + Send + 'static>(&self, value: T) -> Vec<T> {
        Communicator::allgather(self, value)
    }
    fn allreduce_sum_f32(&self, buf: &mut [f32]) {
        Communicator::allreduce_sum_f32(self, buf)
    }
    fn allreduce_sum_f64(&self, buf: &mut [f64]) {
        Communicator::allreduce_sum_f64(self, buf)
    }
    fn allreduce_max_f64(&self, buf: &mut [f64]) {
        Communicator::allreduce_max_f64(self, buf)
    }
    fn allreduce_scalar_f64(&self, v: f64) -> f64 {
        Communicator::allreduce_scalar_f64(self, v)
    }
    fn world_bytes_sent(&self) -> u64 {
        Communicator::world_bytes_sent(self)
    }
    fn account_payload(&self, bytes: u64) {
        Communicator::account_payload(self, bytes)
    }
}

/// Per-rank fabric cost model behind [`SimNetComm`]: a fixed per-message
/// latency plus a fair-share bandwidth, with a knob for how much of the
/// modelled delay is injected as real wall time.
///
/// The bandwidth is **not** a free parameter: [`NetModel::from_machine`]
/// builds the machine's topology as a [`NetSpec`] (one NIC-share egress
/// link per rank, one tapered global bisection link) and runs the
/// [`NetSim`] max-min fair allocation with all ranks transmitting at
/// once — the steady-state fair share under full contention is the rate
/// every message is charged at. That reproduces the congestion knee the
/// paper's scaling studies hinge on: below the bisection saturation
/// point the NIC share limits, beyond it the bisection does.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct NetModel {
    /// Seconds charged per message (per hop aggregate).
    pub latency: f64,
    /// Fair-share bandwidth per rank under full contention, bytes/second.
    pub bytes_per_second: f64,
    /// Fraction of the modelled delay injected as real wall time
    /// (`thread::sleep`). `1.0` delays in "real" modelled time, `0.0`
    /// records the cost without sleeping (numerics are unaffected either
    /// way — delays never change payloads).
    pub time_scale: f64,
}

impl NetModel {
    /// Derive the fair-share model for `ranks` ranks placed
    /// `ranks_per_node` per node on `machine`, by running the max-min
    /// fair [`NetSim`] allocation on the machine's NIC + bisection
    /// topology with every rank transmitting concurrently.
    pub fn from_machine(
        machine: &MachineSpec,
        ranks: usize,
        ranks_per_node: usize,
        time_scale: f64,
    ) -> Self {
        let ranks = ranks.max(1);
        let ranks_per_node = ranks_per_node.max(1);
        let nodes = ranks.div_ceil(ranks_per_node);
        let mut spec = NetSpec::new();
        let bisection = spec.add_link(machine.bisection_bandwidth(nodes).max(1.0));
        let egress_cap =
            machine.nic_bandwidth * machine.nics_per_node as f64 / ranks_per_node as f64;
        let egress: Vec<_> = (0..ranks).map(|_| spec.add_link(egress_cap)).collect();
        // One equal-sized flow per rank through (its egress, the
        // bisection): the max-min allocation under full contention.
        let mut sim = NetSim::new(spec);
        let payload = 1.0e6;
        for e in egress {
            sim.add_flow(Flow::immediate(vec![e, bisection], payload));
        }
        let outcomes = sim.run();
        // All flows are identical, so every mean rate is the fair share.
        let fair_rate = outcomes[0].mean_rate.min(egress_cap);
        Self {
            latency: machine.net_latency,
            bytes_per_second: fair_rate.max(1.0),
            time_scale,
        }
    }

    /// The paper's primary fabric: Frontier, 8 GCD-ranks per node,
    /// modelled delays injected at full scale.
    pub fn frontier_paper(ranks: usize) -> Self {
        Self::from_machine(&FRONTIER, ranks, FRONTIER.gpus_per_node, 1.0)
    }

    /// The paper's 2019 baseline fabric: Summit, 6 ranks per node.
    pub fn summit_paper(ranks: usize) -> Self {
        Self::from_machine(&SUMMIT, ranks, SUMMIT.gpus_per_node, 1.0)
    }

    /// Modelled cost of `messages` messages moving `bytes` payload.
    pub fn delay_seconds(&self, messages: u64, bytes: u64) -> f64 {
        messages as f64 * self.latency + bytes as f64 / self.bytes_per_second
    }
}

/// A [`Collective`] backend wrapped with a modelled network fabric.
///
/// Every operation first charges the [`NetModel`] cost of the messages
/// it is about to put on the wire (accumulated world-wide in
/// [`Collective::modelled_comm_seconds`] and, scaled by
/// `NetModel::time_scale`, injected as real wall time), then delegates
/// to the inner backend unchanged. Because payloads never change,
/// **numerics are bit-identical to the wrapped backend** — asserted
/// end-to-end by the cross-backend workflow determinism test.
///
/// Charging is byte-accurate for the sized operations (the ring
/// all-reduces and `send_vec`) and latency-only for opaque single-value
/// messages (`send`, `broadcast`, `gather`, `allgather`), whose payload
/// size the type system hides.
pub struct SimNetComm<C: Collective> {
    inner: C,
    model: NetModel,
    /// World-wide modelled fabric nanoseconds (shared by all endpoints).
    modelled_nanos: Arc<AtomicU64>,
}

impl<C: Collective> SimNetComm<C> {
    /// Wrap one endpoint. All endpoints of a world must share the
    /// `modelled_nanos` counter — use [`SimNetComm::world`] unless you
    /// are assembling a world by hand.
    pub fn new(inner: C, model: NetModel, modelled_nanos: Arc<AtomicU64>) -> Self {
        Self {
            inner,
            model,
            modelled_nanos,
        }
    }

    /// The wrapped backend.
    pub fn inner(&self) -> &C {
        &self.inner
    }

    /// The fabric model in force.
    pub fn model(&self) -> &NetModel {
        &self.model
    }

    fn charge(&self, messages: u64, bytes: u64) {
        if messages == 0 && bytes == 0 {
            return;
        }
        let secs = self.model.delay_seconds(messages, bytes);
        self.modelled_nanos
            .fetch_add((secs * 1e9) as u64, Ordering::Relaxed);
        if self.model.time_scale > 0.0 {
            let wall = secs * self.model.time_scale;
            if wall > 0.0 {
                std::thread::sleep(std::time::Duration::from_secs_f64(wall));
            }
        }
    }

    /// Cost of one ring all-reduce over `bytes` of payload, charged to
    /// the calling rank: `2(p-1)` message latencies and `2(p-1)/p` of
    /// the buffer crossing this rank's link (the [`crate::collectives`]
    /// alpha-beta ring model, matching the real traffic the inner
    /// implementation generates).
    fn charge_ring_allreduce(&self, bytes: u64) {
        let p = self.size() as u64;
        if p <= 1 || bytes == 0 {
            return;
        }
        let wire_bytes = (2 * (p - 1)).saturating_mul(bytes) / p;
        self.charge(2 * (p - 1), wire_bytes);
    }
}

impl SimNetComm<ChannelComm> {
    /// Build a full world of `size` in-process endpoints wrapped with
    /// `model`, sharing one modelled-time counter.
    pub fn world(size: usize, model: NetModel) -> Vec<SimNetComm<ChannelComm>> {
        let nanos = Arc::new(AtomicU64::new(0));
        CommWorld::new(size)
            .into_endpoints()
            .into_iter()
            .map(|c| SimNetComm::new(c, model, nanos.clone()))
            .collect()
    }
}

impl<C: Collective> Collective for SimNetComm<C> {
    fn rank(&self) -> usize {
        self.inner.rank()
    }
    fn size(&self) -> usize {
        self.inner.size()
    }
    fn barrier(&self) {
        self.charge(1, 0);
        self.inner.barrier()
    }
    fn send<T: Send + 'static>(&self, dest: usize, tag: u64, value: T) {
        self.charge(1, 0);
        self.inner.send(dest, tag, value)
    }
    fn send_vec<T: Send + 'static>(&self, dest: usize, tag: u64, value: Vec<T>) {
        self.charge(1, (value.len() * std::mem::size_of::<T>()) as u64);
        self.inner.send_vec(dest, tag, value)
    }
    fn recv<T: Send + 'static>(&self, source: usize, tag: u64) -> T {
        // The sender carries the cost; receiving is the matching wait.
        self.inner.recv(source, tag)
    }
    fn broadcast<T: Clone + Send + 'static>(&self, root: usize, value: Option<T>) -> T {
        if self.rank() == root {
            self.charge(self.size() as u64 - 1, 0);
        }
        self.inner.broadcast(root, value)
    }
    fn gather<T: Send + 'static>(&self, root: usize, value: T) -> Option<Vec<T>> {
        if self.rank() != root {
            self.charge(1, 0);
        }
        self.inner.gather(root, value)
    }
    fn allgather<T: Clone + Send + 'static>(&self, value: T) -> Vec<T> {
        // Gather to root + broadcast back: every non-root rank pays one
        // send, root pays the fan-out.
        let p = self.size() as u64;
        if p > 1 {
            if self.rank() == 0 {
                self.charge(p - 1, 0);
            } else {
                self.charge(1, 0);
            }
        }
        self.inner.allgather(value)
    }
    fn allreduce_sum_f32(&self, buf: &mut [f32]) {
        self.charge_ring_allreduce((buf.len() * 4) as u64);
        self.inner.allreduce_sum_f32(buf)
    }
    fn allreduce_sum_f64(&self, buf: &mut [f64]) {
        self.charge_ring_allreduce((buf.len() * 8) as u64);
        self.inner.allreduce_sum_f64(buf)
    }
    fn allreduce_max_f64(&self, buf: &mut [f64]) {
        self.charge_ring_allreduce((buf.len() * 8) as u64);
        self.inner.allreduce_max_f64(buf)
    }
    fn world_bytes_sent(&self) -> u64 {
        self.inner.world_bytes_sent()
    }
    fn account_payload(&self, bytes: u64) {
        self.charge(0, bytes);
        self.inner.account_payload(bytes);
    }
    fn modelled_comm_seconds(&self) -> f64 {
        self.modelled_nanos.load(Ordering::Relaxed) as f64 * 1e-9
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::thread;

    fn run_world<C, F>(endpoints: Vec<C>, f: F)
    where
        C: Collective,
        F: Fn(C) + Send + Sync + Copy + 'static,
    {
        let handles: Vec<_> = endpoints
            .into_iter()
            .map(|c| thread::spawn(move || f(c)))
            .collect();
        for h in handles {
            h.join().expect("rank thread panicked");
        }
    }

    fn fast_model() -> NetModel {
        NetModel {
            latency: 1e-7,
            bytes_per_second: 1e9,
            time_scale: 0.0, // record-only: tests stay fast
        }
    }

    #[test]
    fn channel_comm_world_works_through_the_trait() {
        fn collective_roundtrip<C: Collective>(c: C) {
            let all = c.allgather(c.rank() as u64);
            assert_eq!(all, vec![0, 1, 2]);
            let mut buf = vec![c.rank() as f32 + 1.0; 5];
            c.allreduce_sum_f32(&mut buf);
            assert!(buf.iter().all(|&v| (v - 6.0).abs() < 1e-6));
            let s = c.allreduce_scalar_f64(2.0);
            assert!((s - 6.0).abs() < 1e-12);
            c.barrier();
        }
        run_world(CommWorld::new(3).into_endpoints(), collective_roundtrip);
        run_world(SimNetComm::world(3, fast_model()), collective_roundtrip);
    }

    #[test]
    fn simnet_matches_channel_comm_bit_for_bit() {
        // Same seed-free deterministic payloads through both backends:
        // the reduced buffers must be bit-identical.
        fn reduce<C: Collective>(c: C) -> Vec<f64> {
            let mut buf: Vec<f64> = (0..17)
                .map(|i| (c.rank() as f64 + 1.0) * (i as f64 + 0.37).sin())
                .collect();
            c.allreduce_sum_f64(&mut buf);
            buf
        }
        let run = |eps: Vec<Box<dyn FnOnce() -> Vec<f64> + Send>>| -> Vec<Vec<f64>> {
            let hs: Vec<_> = eps.into_iter().map(thread::spawn).collect();
            hs.into_iter().map(|h| h.join().unwrap()).collect()
        };
        let chan: Vec<Box<dyn FnOnce() -> Vec<f64> + Send>> = CommWorld::new(2)
            .into_endpoints()
            .into_iter()
            .map(|c| Box::new(move || reduce(c)) as _)
            .collect();
        let sim: Vec<Box<dyn FnOnce() -> Vec<f64> + Send>> = SimNetComm::world(2, fast_model())
            .into_iter()
            .map(|c| Box::new(move || reduce(c)) as _)
            .collect();
        let a = run(chan);
        let b = run(sim);
        for (ra, rb) in a.iter().zip(&b) {
            for (x, y) in ra.iter().zip(rb) {
                assert_eq!(x.to_bits(), y.to_bits(), "backends must agree bitwise");
            }
        }
    }

    #[test]
    fn simnet_accumulates_modelled_seconds_and_bytes() {
        run_world(SimNetComm::world(2, fast_model()), |c| {
            let mut buf = vec![c.rank() as f32; 1024];
            c.allreduce_sum_f32(&mut buf);
            if c.rank() == 0 {
                c.send_vec(1, 7, vec![0u8; 4096]);
            } else {
                let _: Vec<u8> = c.recv(0, 7);
            }
            c.barrier();
            assert!(c.modelled_comm_seconds() > 0.0, "fabric time must accrue");
            assert!(c.world_bytes_sent() >= 4096, "payload bytes still counted");
        });
    }

    #[test]
    fn frontier_model_reflects_the_machine_constants() {
        let m = NetModel::frontier_paper(8);
        assert_eq!(m.latency, FRONTIER.net_latency);
        // 8 ranks on one node share 4×25 GB/s NICs: 12.5 GB/s fair share,
        // and one node's bisection slice cannot beat its injection.
        assert!(m.bytes_per_second <= 12.5e9 + 1.0);
        assert!(m.bytes_per_second > 1.0e9);
        // More ranks through the same tapered bisection → smaller share.
        let big = NetModel::from_machine(&FRONTIER, 512, 8, 1.0);
        assert!(big.bytes_per_second <= m.bytes_per_second);
    }

    #[test]
    fn delay_model_is_latency_plus_bandwidth() {
        let m = NetModel {
            latency: 2e-6,
            bytes_per_second: 1e9,
            time_scale: 0.0,
        };
        let d = m.delay_seconds(3, 1_000_000);
        assert!((d - (6e-6 + 1e-3)).abs() < 1e-12);
    }
}
