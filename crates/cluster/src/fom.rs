//! Weak-scaling Figure-of-Merit model (Fig. 4).
//!
//! PIConGPU's FOM is the weighted sum of particle updates per second (90 %)
//! and cell updates per second (10 %). The paper reports 65.3 TeraUpdates/s
//! on full Frontier (36 864 GPUs, 9216 nodes) vs 14.7 TeraUpdates/s on
//! Summit. Weak scaling is nearly flat because PIC communication is
//! nearest-neighbour halo exchange; the residual droop comes from halo
//! volume and the per-step global synchronisation (diagnostics reductions).
//!
//! The model here produces the Fig. 4 series: calibrate the per-device
//! update rate either from the paper's full-system endpoint or from a real
//! measured rate of our own CPU PIC, then evaluate FOM at any node count.

use crate::machine::MachineSpec;

/// Analytic weak-scaling model for the PIC Figure of Merit.
#[derive(Debug, Clone)]
pub struct FomModel {
    /// Machine constants (latency enters the sync term).
    pub spec: MachineSpec,
    /// Devices per node as the paper counts them (4 MI250X on Frontier,
    /// 6 V100 on Summit) — *not* GCDs.
    pub devices_per_node: usize,
    /// Particle updates per second per device at perfect efficiency.
    pub device_particle_rate: f64,
    /// Macro-particles per cell of the workload (TWEAC-FOM ≈ 27).
    pub particles_per_cell: f64,
    /// Fraction of a step spent on nearest-neighbour halo exchange at any
    /// scale > 1 node (weak scaling ⇒ constant halo volume per rank).
    pub halo_overhead: f64,
    /// Per-step global synchronisation cost in units of compute-step time,
    /// multiplied by log2(nodes) (reduction trees for diagnostics).
    pub sync_overhead_per_log_node: f64,
}

impl FomModel {
    /// Model with overheads representative of PIConGPU (≈96 % efficiency at
    /// full Frontier) and a device rate to be calibrated.
    pub fn new(spec: MachineSpec, devices_per_node: usize, particles_per_cell: f64) -> Self {
        Self {
            spec,
            devices_per_node,
            device_particle_rate: 1.0,
            particles_per_cell,
            halo_overhead: 0.025,
            sync_overhead_per_log_node: 0.0012,
        }
    }

    /// Parallel efficiency at `nodes` nodes (1.0 on a single node).
    pub fn efficiency(&self, nodes: usize) -> f64 {
        if nodes <= 1 {
            return 1.0;
        }
        let sync = self.sync_overhead_per_log_node * (nodes as f64).log2();
        1.0 / (1.0 + self.halo_overhead + sync)
    }

    /// FOM (weighted updates/second) at `nodes` nodes.
    pub fn fom(&self, nodes: usize) -> f64 {
        let devices = (nodes * self.devices_per_node) as f64;
        let particle_rate = devices * self.device_particle_rate * self.efficiency(nodes);
        // cells/s = particles/s ÷ (particles per cell)
        particle_rate * (0.9 + 0.1 / self.particles_per_cell)
    }

    /// Calibrate [`Self::device_particle_rate`] so `fom(nodes)` equals
    /// `target_fom` (e.g. the paper's 65.3 TU/s at 9216 nodes).
    pub fn calibrate_to(&mut self, nodes: usize, target_fom: f64) -> &mut Self {
        self.device_particle_rate = 1.0;
        let base = self.fom(nodes);
        self.device_particle_rate = target_fom / base;
        self
    }

    /// Seconds per PIC step when each device owns `particles_per_device`
    /// macro-particles (used to reproduce "1000 steps in 6.5 minutes").
    pub fn step_time(&self, nodes: usize, particles_per_device: f64) -> f64 {
        particles_per_device / (self.device_particle_rate * self.efficiency(nodes))
    }

    /// The paper's Frontier model: 4 devices/node, TWEAC-like 27 ppc,
    /// calibrated to 65.3 TU/s at 9216 nodes.
    pub fn frontier_paper() -> Self {
        let mut m = Self::new(crate::machine::FRONTIER, 4, 27.0);
        m.calibrate_to(9216, 65.3e12);
        m
    }

    /// The paper's Summit baseline: 6 devices/node, 25 ppc, calibrated to
    /// 14.7 TU/s at full machine (4608 nodes).
    pub fn summit_paper() -> Self {
        let mut m = Self::new(crate::machine::SUMMIT, 6, 25.0);
        m.calibrate_to(4608, 14.7e12);
        m
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn calibration_hits_paper_endpoints() {
        let f = FomModel::frontier_paper();
        assert!((f.fom(9216) - 65.3e12).abs() / 65.3e12 < 1e-12);
        let s = FomModel::summit_paper();
        assert!((s.fom(4608) - 14.7e12).abs() / 14.7e12 < 1e-12);
    }

    #[test]
    fn frontier_beats_summit_per_device() {
        let f = FomModel::frontier_paper();
        let s = FomModel::summit_paper();
        assert!(f.device_particle_rate > 2.0 * s.device_particle_rate);
    }

    #[test]
    fn weak_scaling_is_nearly_linear() {
        let f = FomModel::frontier_paper();
        // Fig. 4 range: 6 → 9216 nodes (24 → 36 864 GPUs).
        let fom6 = f.fom(6);
        let fom9216 = f.fom(9216);
        let speedup = fom9216 / fom6;
        let ideal = 9216.0 / 6.0;
        assert!(speedup / ideal > 0.9, "weak scaling too lossy: {speedup}");
        assert!(speedup / ideal <= 1.0);
    }

    #[test]
    fn efficiency_monotonically_decreases() {
        let f = FomModel::frontier_paper();
        let mut last = f.efficiency(1);
        for nodes in [2usize, 8, 64, 512, 4096, 9216] {
            let e = f.efficiency(nodes);
            assert!(e <= last + 1e-15);
            last = e;
        }
        assert!(last > 0.9, "PIConGPU-like efficiency stays above 90 %");
    }

    #[test]
    fn thousand_steps_in_about_six_and_a_half_minutes() {
        // §IV-A: Frontier run with 2.7e13 macro-particles over 36 864
        // devices, 1000 steps in ~6.5 min.
        let f = FomModel::frontier_paper();
        let particles_per_device = 2.7e13 / 36_864.0;
        let t1000 = 1000.0 * f.step_time(9216, particles_per_device);
        let minutes = t1000 / 60.0;
        assert!(
            (4.0..10.0).contains(&minutes),
            "expected ≈6.5 min, modelled {minutes:.1} min"
        );
    }

    #[test]
    fn fom_weights_cells_at_ten_percent() {
        let mut a = FomModel::new(crate::machine::FRONTIER, 4, 1.0);
        a.device_particle_rate = 1.0;
        let mut b = FomModel::new(crate::machine::FRONTIER, 4, f64::INFINITY);
        b.device_particle_rate = 1.0;
        // ppc=1: FOM = rate · (0.9 + 0.1); ppc→∞: FOM = rate · 0.9.
        assert!((a.fom(1) / b.fom(1) - (1.0 / 0.9)).abs() < 1e-12);
    }
}
