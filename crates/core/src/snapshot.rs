//! Immutable, versioned learner snapshots — the publish side of the
//! surrogate serving tier.
//!
//! The continual learner pays off only when the trained surrogate can be
//! *queried* while (and after) training runs. This module owns the
//! training-side half of that contract:
//!
//! - [`ModelSnapshot`]: a self-contained, immutable copy of the model —
//!   parameter tensors, normalization ([`EncodeConfig`]), architecture
//!   ([`as_nn::model::ModelConfig`]) and a monotone version id, plus the
//!   FNV-1a parameter hash as a bit-integrity witness. A snapshot can be
//!   [`ModelSnapshot::instantiate`]d into a fresh model anywhere; the
//!   hash check on restore makes torn or corrupted weights a hard panic
//!   instead of silently wrong inference.
//! - [`SnapshotSink`]: where published snapshots go. The serving crate
//!   (`as-serve`) implements this for its inference engine; tests can
//!   implement it with a channel.
//! - [`SnapshotPublisher`]: the consumer drivers' bookkeeping — decides
//!   *when* a snapshot is due (every `publish_every` training
//!   iterations, a counter that is bit-identical across DDP ranks) and
//!   keeps the version counter monotone across publishes, restarts and
//!   learner-root failovers.
//!
//! Under the DDP drivers only the learner root captures and publishes;
//! the payload is priced through the group's
//! [`as_cluster::collective::Collective`] (`account_broadcast_payload`),
//! so under the netsim backend snapshot distribution is charged the same
//! modelled fabric cost as gradient buckets and sample broadcasts.

use crate::config::ServingConfig;
use crate::encode::EncodeConfig;
use as_nn::ddp::param_hash;
use as_nn::model::{ArtificialScientistModel, ModelConfig};
use as_tensor::Tensor;
use std::sync::Arc;

/// An immutable, versioned copy of the learner's model: everything a
/// serving replica needs to answer inversion queries, with no live
/// aliasing of the training-side tensors.
#[derive(Debug, Clone)]
pub struct ModelSnapshot {
    /// Monotone snapshot version (1-based; bumped on every publish).
    pub version: u64,
    /// Training-iteration counter at capture time.
    pub iteration: u64,
    /// Architecture/loss configuration needed to rebuild the model.
    pub model_cfg: ModelConfig,
    /// Normalization parameters queries must be encoded with.
    pub encode: EncodeConfig,
    /// Parameter tensors in [`ArtificialScientistModel::visit_all`]
    /// order (VAE then INN; stable).
    pub params: Vec<Vec<f32>>,
    /// FNV-1a hash of the parameter bits at capture
    /// ([`as_nn::ddp::param_hash`]) — asserted again after restore.
    pub param_hash: u64,
}

impl ModelSnapshot {
    /// Copy the model's parameters out into an immutable snapshot.
    /// (`&mut` only because the visitor API threads gradient slots;
    /// capture never mutates the model.)
    pub fn capture(
        model: &mut ArtificialScientistModel,
        encode: EncodeConfig,
        version: u64,
        iteration: u64,
    ) -> Self {
        let mut params: Vec<Vec<f32>> = Vec::new();
        model.visit_all(&mut |p: &mut Tensor, _g: &mut Tensor| {
            params.push(p.data().to_vec());
        });
        let hash = param_hash(model);
        Self {
            version,
            iteration,
            model_cfg: model.cfg.clone(),
            encode,
            params,
            param_hash: hash,
        }
    }

    /// Serialized payload size used for collective accounting: the
    /// parameter bits plus a small header (version, iteration, hash and
    /// the normalization constants).
    pub fn payload_bytes(&self) -> u64 {
        let body: usize = self.params.iter().map(|p| p.len() * 4).sum();
        (body + 64) as u64
    }

    /// Rebuild a standalone model from the snapshot and verify the
    /// parameter hash — the torn-weights guard: a snapshot that does not
    /// reproduce its captured bits panics here instead of serving wrong
    /// answers.
    pub fn instantiate(&self) -> ArtificialScientistModel {
        let mut model = ArtificialScientistModel::new(self.model_cfg.clone(), 0);
        let mut idx = 0usize;
        model.visit_all(&mut |p: &mut Tensor, _g: &mut Tensor| {
            let src = self.params.get(idx).unwrap_or_else(|| {
                panic!("snapshot v{} has too few tensors ({idx})", self.version)
            });
            assert_eq!(
                p.data().len(),
                src.len(),
                "snapshot v{} tensor {idx} length mismatch",
                self.version
            );
            p.data_mut().copy_from_slice(src);
            idx += 1;
        });
        assert_eq!(
            idx,
            self.params.len(),
            "snapshot v{} tensor count mismatch",
            self.version
        );
        let h = param_hash(&mut model);
        assert_eq!(
            h, self.param_hash,
            "torn snapshot v{}: parameter hash mismatch after restore",
            self.version
        );
        model
    }
}

/// Where published snapshots go. Implemented by the serving tier's
/// inference engine (`as_serve::EngineSink`); any implementation must be
/// safe to call from whichever consumer rank currently holds the
/// learner-root role.
pub trait SnapshotSink: Send + Sync {
    /// Deliver one published snapshot. Versions arrive strictly
    /// increasing (monotone across restarts and root failovers).
    fn publish(&self, snapshot: ModelSnapshot);
}

/// Consumer-driver bookkeeping for snapshot publication: the due-check
/// on the (rank-identical) training-iteration counter and the monotone
/// version counter.
pub struct SnapshotPublisher {
    sink: Arc<dyn SnapshotSink>,
    publish_every: u64,
    encode: EncodeConfig,
    version: u64,
}

impl SnapshotPublisher {
    /// New publisher over `sink` with the serving config's cadence.
    pub fn new(sink: Arc<dyn SnapshotSink>, serving: &ServingConfig, encode: EncodeConfig) -> Self {
        assert!(serving.publish_every >= 1, "publish_every must be >= 1");
        Self {
            sink,
            publish_every: serving.publish_every,
            encode,
            version: 0,
        }
    }

    /// True when a snapshot is due after `iterations` completed training
    /// iterations. Every DDP rank computes the same answer, so the
    /// group's collective schedule stays aligned.
    pub fn due(&self, iterations: u64) -> bool {
        iterations > 0 && iterations.is_multiple_of(self.publish_every)
    }

    /// Bump the version and capture a snapshot (the learner root's
    /// half; follow with [`SnapshotPublisher::send`]).
    pub fn capture(
        &mut self,
        model: &mut ArtificialScientistModel,
        iteration: u64,
    ) -> ModelSnapshot {
        self.version += 1;
        ModelSnapshot::capture(model, self.encode, self.version, iteration)
    }

    /// Deliver a captured snapshot to the sink.
    pub fn send(&self, snapshot: ModelSnapshot) {
        self.sink.publish(snapshot);
    }

    /// Bump the version without capturing — the non-root DDP ranks'
    /// half, keeping every rank's version counter in lockstep.
    pub fn skip(&mut self) {
        self.version += 1;
    }

    /// Snapshots published (or skipped past) so far.
    pub fn version(&self) -> u64 {
        self.version
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use as_nn::model::ModelConfig;

    fn tiny_model(seed: u64) -> ArtificialScientistModel {
        ArtificialScientistModel::new(ModelConfig::small(), seed)
    }

    #[test]
    fn capture_restore_roundtrip_is_bitwise() {
        let mut m = tiny_model(7);
        let before = param_hash(&mut m);
        let snap = ModelSnapshot::capture(&mut m, EncodeConfig::default(), 1, 4);
        assert_eq!(snap.param_hash, before);
        assert_eq!(param_hash(&mut m), before, "capture must not mutate");
        let mut restored = snap.instantiate();
        assert_eq!(param_hash(&mut restored), before);
        assert!(snap.payload_bytes() > 64);
    }

    #[test]
    #[should_panic(expected = "torn snapshot")]
    fn corrupted_snapshot_is_rejected() {
        let mut m = tiny_model(7);
        let mut snap = ModelSnapshot::capture(&mut m, EncodeConfig::default(), 1, 0);
        snap.params[0][0] += 1.0;
        let _ = snap.instantiate();
    }

    #[test]
    fn publisher_cadence_and_versions() {
        struct Count(std::sync::atomic::AtomicU64);
        impl SnapshotSink for Count {
            fn publish(&self, s: ModelSnapshot) {
                let n = self.0.fetch_add(1, std::sync::atomic::Ordering::SeqCst);
                assert_eq!(s.version, n + 1, "versions are monotone from 1");
            }
        }
        let sink = Arc::new(Count(std::sync::atomic::AtomicU64::new(0)));
        let serving = ServingConfig {
            publish_every: 3,
            ..ServingConfig::default()
        };
        let mut p = SnapshotPublisher::new(sink.clone(), &serving, EncodeConfig::default());
        let mut m = tiny_model(1);
        for it in 1..=9u64 {
            if p.due(it) {
                let s = p.capture(&mut m, it);
                p.send(s);
            }
        }
        assert!(!p.due(0), "iteration 0 never publishes");
        assert_eq!(p.version(), 3);
        assert_eq!(sink.0.load(std::sync::atomic::Ordering::SeqCst), 3);
    }
}
