//! Fault-tolerant collectives for the degradable learner group.
//!
//! [`FtComm`] wraps any [`Collective`] endpoint with timeout-bounded,
//! membership-aware operations built from the transport's raw tagged
//! `send`/`try_recv_timeout` primitives (tags live in the reserved
//! `FT_TAG_BASE` block, so they can never collide with application or
//! overlap-worker traffic):
//!
//! - [`FtComm::exchange`] — every live rank contributes a value and
//!   receives the contributions of every peer that answered within the
//!   death budget, keyed by rank. The **key set is the agreed
//!   membership** for the round: deaths are injected at window
//!   boundaries *before* the dying rank sends anything, and a dying rank
//!   marks itself dead on the shared world first, so either every
//!   survivor gets its message or none does.
//! - [`FtComm::allreduce_sum`] — exchange + [`reduce_in_ring_order`]
//!   over the rank-ascending contributions. When every rank is alive
//!   this is **bit-identical** to the legacy blocking all-reduce (which
//!   replays the same canonical ring order), which is what lets a faulted
//!   run be compared hash-for-hash against an unfaulted reference.
//! - [`FtComm::elect_broadcast`] — broadcast rooted at the lowest live
//!   rank, with automatic re-election if the root dies before sending
//!   (the `DropSteps` window-target gate after rank 0's death).
//!
//! A peer that stays silent past `retry_budget × op_timeout` retries is
//! declared dead ([`Collective::mark_dead`]) and excluded from every
//! later round — detection is bounded, never a hang. Message chaos
//! (drop/delay/duplicate from [`as_cluster::comm::FaultInjector`]) only
//! *delays* traffic, so budgets merely need to exceed the worst injected
//! delay.

use std::cell::Cell;
use std::collections::BTreeMap;
use std::time::Duration;

use as_cluster::algos::reduce_in_ring_order;
use as_cluster::collective::Collective;
use as_cluster::comm::FT_TAG_BASE;

use crate::faults::FaultPlan;

/// Timeout-bounded, membership-aware collective operations over a
/// tolerant [`Collective`] world (see module docs).
pub struct FtComm<'a, C: Collective> {
    comm: &'a C,
    tick: Duration,
    /// Total silence budget before a peer is declared dead.
    budget: Duration,
    /// Monotone per-endpoint operation counter; never reset, so every
    /// logical operation owns a unique tag on every rank.
    op_seq: Cell<u64>,
    /// Wall seconds spent waiting on peers that ended up condemned —
    /// the detection cost of every death this endpoint witnessed.
    condemn_wait: Cell<f64>,
}

impl<'a, C: Collective> FtComm<'a, C> {
    /// Wrap an endpoint with the plan's detection budgets.
    pub fn new(comm: &'a C, plan: &FaultPlan) -> Self {
        Self {
            comm,
            tick: Duration::from_millis(plan.tick_ms.max(1)),
            budget: Duration::from_millis(plan.death_budget_ms().max(1)),
            op_seq: Cell::new(0),
            condemn_wait: Cell::new(0.0),
        }
    }

    /// Wall seconds this endpoint spent detecting peer deaths (waiting
    /// out budgets on peers that were then condemned).
    pub fn condemned_wait_seconds(&self) -> f64 {
        self.condemn_wait.get()
    }

    /// This endpoint's rank.
    pub fn rank(&self) -> usize {
        self.comm.rank()
    }

    /// Full world size (including dead ranks).
    pub fn size(&self) -> usize {
        self.comm.size()
    }

    /// Ranks currently believed alive, ascending.
    pub fn alive_ranks(&self) -> Vec<usize> {
        let mask = self.comm.alive_mask();
        (0..self.comm.size())
            .filter(|&r| mask & (1 << r) != 0)
            .collect()
    }

    fn next_tag(&self) -> u64 {
        let seq = self.op_seq.get();
        self.op_seq.set(seq + 1);
        FT_TAG_BASE + seq
    }

    /// Wait for one message from `peer` on `tag` within the death
    /// budget; `None` declares the peer dead (and marks it so).
    fn recv_or_condemn<T: Send + 'static>(&self, peer: usize, tag: u64) -> Option<T> {
        let start = std::time::Instant::now();
        let mut waited = Duration::ZERO;
        loop {
            match self.comm.try_recv_timeout::<T>(peer, tag, self.tick) {
                Ok(Some(v)) => return Some(v),
                Ok(None) => {
                    waited += self.tick;
                    if waited >= self.budget {
                        self.comm.mark_dead(peer);
                        self.condemn_wait
                            .set(self.condemn_wait.get() + start.elapsed().as_secs_f64());
                        return None;
                    }
                }
                // Disconnected or already condemned: no retry can help.
                Err(_) => {
                    self.comm.mark_dead(peer);
                    self.condemn_wait
                        .set(self.condemn_wait.get() + start.elapsed().as_secs_f64());
                    return None;
                }
            }
        }
    }

    /// All-to-all contribution exchange. Returns every answering rank's
    /// value keyed by rank (self included) — the agreed membership for
    /// this round.
    pub fn exchange<T: Clone + Send + 'static>(&self, value: T) -> BTreeMap<usize, T> {
        let tag = self.next_tag();
        let me = self.comm.rank();
        for peer in 0..self.comm.size() {
            if peer != me && !self.comm.is_rank_dead(peer) {
                self.comm.send(peer, tag, value.clone());
            }
        }
        let mut out = BTreeMap::new();
        out.insert(me, value);
        for peer in 0..self.comm.size() {
            if peer == me || self.comm.is_rank_dead(peer) {
                continue;
            }
            if let Some(v) = self.recv_or_condemn::<T>(peer, tag) {
                out.insert(peer, v);
            }
        }
        out
    }

    /// Membership probe: exchange nothing, return who answered.
    pub fn members(&self) -> Vec<usize> {
        self.exchange(0u8).into_keys().collect()
    }

    /// Fault-tolerant element-wise sum over all live ranks, reduced in
    /// the canonical ring order (bit-identical to the legacy blocking
    /// all-reduce when every rank is alive). Returns the number of
    /// contributions summed.
    pub fn allreduce_sum<T>(&self, buf: &mut [T]) -> usize
    where
        T: Copy + Send + std::ops::AddAssign + 'static,
    {
        let contribs: Vec<Vec<T>> = self.exchange(buf.to_vec()).into_values().collect();
        reduce_in_ring_order(&contribs, buf, |a, b| *a += b);
        contribs.len()
    }

    /// Broadcast rooted at the lowest live rank. Only the elected root
    /// evaluates `make`; if the root dies before sending, the survivors
    /// re-elect and retry on the same tag (re-election never splits the
    /// tag space, so a late joiner of the round still pairs up).
    pub fn elect_broadcast<T, F>(&self, mut make: F) -> (usize, T)
    where
        T: Clone + Send + 'static,
        F: FnMut() -> T,
    {
        let tag = self.next_tag();
        let me = self.comm.rank();
        loop {
            let root = *self
                .alive_ranks()
                .first()
                .unwrap_or_else(|| panic!("at least this rank must be alive"));
            if root == me {
                let v = make();
                for peer in 0..self.comm.size() {
                    if peer != me && !self.comm.is_rank_dead(peer) {
                        self.comm.send(peer, tag, v.clone());
                    }
                }
                return (root, v);
            }
            if let Some(v) = self.recv_or_condemn::<T>(root, tag) {
                return (root, v);
            }
            // Root condemned — loop re-elects (possibly electing self).
        }
    }

    /// Broadcast from a known live `owner` (agreed upon by every member
    /// this round, e.g. the window owner). The owner passes
    /// `Some(value)`, every other member `None`; members that cannot
    /// hear a dying owner get `None` back.
    pub fn broadcast_from<T: Clone + Send + 'static>(
        &self,
        owner: usize,
        value: Option<T>,
    ) -> Option<T> {
        let tag = self.next_tag();
        let me = self.comm.rank();
        if me == owner {
            let v = value.unwrap_or_else(|| panic!("owner must provide the broadcast value"));
            for peer in 0..self.comm.size() {
                if peer != me && !self.comm.is_rank_dead(peer) {
                    self.comm.send(peer, tag, v.clone());
                }
            }
            Some(v)
        } else {
            self.recv_or_condemn::<T>(owner, tag)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use as_cluster::algos::CollectiveAlgo;
    use as_cluster::comm::{CommFaults, CommWorld};

    fn plan() -> FaultPlan {
        FaultPlan {
            op_timeout_ms: 20,
            tick_ms: 1,
            retry_budget: 4,
            ..FaultPlan::default()
        }
    }

    fn armed_world(n: usize) -> Vec<impl Collective> {
        CommWorld::with_faults(n, CollectiveAlgo::Linear, CommFaults::none(7)).into_endpoints()
    }

    #[test]
    fn exchange_agrees_and_sums_like_the_ring() {
        let eps = armed_world(3);
        let handles: Vec<_> = eps
            .into_iter()
            .map(|c| {
                std::thread::spawn(move || {
                    let p = plan();
                    let ft = FtComm::new(&c, &p);
                    let rank = ft.rank();
                    let got = ft.exchange(vec![rank as f64; 2]);
                    assert_eq!(got.keys().copied().collect::<Vec<_>>(), vec![0, 1, 2]);
                    // FT sum must equal the legacy blocking allreduce bitwise.
                    let mut ours = vec![rank as f64, 1.0];
                    let n = ft.allreduce_sum(&mut ours);
                    assert_eq!(n, 3);
                    let mut legacy = vec![rank as f64, 1.0];
                    c.allreduce_sum_f64(&mut legacy);
                    assert_eq!(ours[0].to_bits(), legacy[0].to_bits());
                    assert_eq!(ours[1].to_bits(), legacy[1].to_bits());
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
    }

    #[test]
    fn silent_rank_is_condemned_and_excluded_from_later_rounds() {
        let mut eps = armed_world(3);
        let dead = eps.remove(2);
        let handles: Vec<_> = eps
            .into_iter()
            .map(|c| {
                std::thread::spawn(move || {
                    let p = plan();
                    let ft = FtComm::new(&c, &p);
                    // Rank 2 never participates: the first round times
                    // out on it, later rounds skip it instantly.
                    let got = ft.exchange(1u64);
                    assert_eq!(got.keys().copied().collect::<Vec<_>>(), vec![0, 1]);
                    assert!(c.is_rank_dead(2));
                    let again = ft.members();
                    assert_eq!(again, vec![0, 1]);
                    let mut sum = vec![1.0f64];
                    assert_eq!(ft.allreduce_sum(&mut sum), 2);
                    assert_eq!(sum[0], 2.0);
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        drop(dead);
    }

    #[test]
    fn dead_root_triggers_re_election() {
        let mut eps = armed_world(3);
        let rank0 = eps.remove(0);
        // Rank 0 marks itself dead (the DeathGuard path) and vanishes.
        rank0.mark_dead(0);
        drop(rank0);
        let handles: Vec<_> = eps
            .into_iter()
            .map(|c| {
                std::thread::spawn(move || {
                    let p = plan();
                    let ft = FtComm::new(&c, &p);
                    let me = ft.rank();
                    let (root, v) = ft.elect_broadcast(|| me as u64);
                    assert_eq!(root, 1);
                    assert_eq!(v, 1);
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
    }
}
