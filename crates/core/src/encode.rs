//! Encoding simulation data into ML-ready samples.
//!
//! §III-A: "Prepare the collected data for an ML model by finding suitable
//! encodings for spectral and phase space data." One training sample pairs
//! a sub-volume's particle point cloud `D` (positions + momenta,
//! normalised) with the radiation spectrum `I` that sub-volume emitted
//! (log-encoded, resampled to the INN's `dim(I)`).

use as_nn::model::ModelConfig;
use as_radiation::spectrum::Spectrum;
use as_staging::view::VarView;
use as_tensor::Tensor;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Normalisation parameters.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EncodeConfig {
    /// Points per sample cloud (paper: 3×10⁴ fed in, 4096 out).
    pub sample_points: usize,
    /// Momentum normalisation scale (γβ units mapped to ≈[-1,1]).
    pub momentum_scale: f64,
    /// Log-intensity dynamic range for the spectrum encoding.
    pub log_min: f64,
    /// Upper end of the log-intensity range.
    pub log_max: f64,
}

impl Default for EncodeConfig {
    fn default() -> Self {
        Self {
            sample_points: 256,
            momentum_scale: 0.35,
            log_min: -12.0,
            log_max: 2.0,
        }
    }
}

/// One training sample: a point cloud and its spectrum, plus the ground
/// truth region label (used only for evaluation, never for training —
/// the learning is unsupervised).
#[derive(Debug, Clone)]
pub struct Sample {
    /// Flattened point cloud `[sample_points × 6]` (normalised).
    pub points: Vec<f32>,
    /// Encoded spectrum `[spectrum_dim]`.
    pub spectrum: Vec<f32>,
    /// Ground-truth region index (0 approaching, 1 receding, 2 vortex).
    pub region: usize,
    /// Source PIC step.
    pub step: u64,
}

impl EncodeConfig {
    /// Build the point-cloud half of a sample from raw particle arrays
    /// (global coordinates), selecting `sample_points` particles at
    /// random (with replacement when the region holds fewer).
    ///
    /// Positions are centred on the sub-volume and scaled by its
    /// half-extents; momenta scale by `momentum_scale`.
    #[allow(clippy::too_many_arguments)]
    pub fn encode_points(
        &self,
        xs: &[f64],
        ys: &[f64],
        zs: &[f64],
        uxs: &[f64],
        uys: &[f64],
        uzs: &[f64],
        center: [f64; 3],
        half_extent: [f64; 3],
        rng: &mut StdRng,
    ) -> Vec<f32> {
        assert!(!xs.is_empty(), "cannot encode an empty region");
        let n = xs.len();
        let mut out = Vec::with_capacity(self.sample_points * 6);
        for _ in 0..self.sample_points {
            let i = rng.gen_range(0..n);
            out.push((((xs[i] - center[0]) / half_extent[0]) as f32).clamp(-1.5, 1.5));
            out.push((((ys[i] - center[1]) / half_extent[1]) as f32).clamp(-1.5, 1.5));
            out.push((((zs[i] - center[2]) / half_extent[2]) as f32).clamp(-1.5, 1.5));
            out.push((uxs[i] / self.momentum_scale) as f32);
            out.push((uys[i] / self.momentum_scale) as f32);
            out.push((uzs[i] / self.momentum_scale) as f32);
        }
        out
    }

    /// Zero-copy twin of [`Self::encode_points`]: reads particles
    /// straight out of staging [`VarView`]s through a region index list
    /// instead of gathered per-region copies. Consumes the RNG
    /// identically (one `gen_range(0..idx.len())` per output point) and
    /// performs the same f64→f32 arithmetic, so under the lossless wire
    /// codec the output is bit-identical to the gather path.
    #[allow(clippy::too_many_arguments)]
    pub fn encode_points_view(
        &self,
        xs: &VarView,
        ys: &VarView,
        zs: &VarView,
        uxs: &VarView,
        uys: &VarView,
        uzs: &VarView,
        idx: &[usize],
        center: [f64; 3],
        half_extent: [f64; 3],
        rng: &mut StdRng,
    ) -> Vec<f32> {
        assert!(!idx.is_empty(), "cannot encode an empty region");
        let n = idx.len();
        let mut out = Vec::with_capacity(self.sample_points * 6);
        for _ in 0..self.sample_points {
            let i = idx[rng.gen_range(0..n)];
            out.push((((xs.get_f64(i) - center[0]) / half_extent[0]) as f32).clamp(-1.5, 1.5));
            out.push((((ys.get_f64(i) - center[1]) / half_extent[1]) as f32).clamp(-1.5, 1.5));
            out.push((((zs.get_f64(i) - center[2]) / half_extent[2]) as f32).clamp(-1.5, 1.5));
            out.push((uxs.get_f64(i) / self.momentum_scale) as f32);
            out.push((uys.get_f64(i) / self.momentum_scale) as f32);
            out.push((uzs.get_f64(i) / self.momentum_scale) as f32);
        }
        out
    }

    /// Encode a spectrum into the INN condition vector.
    pub fn encode_spectrum(&self, spectrum: &Spectrum, dim: usize) -> Vec<f32> {
        let resampled = if spectrum.frequencies.len() == dim {
            spectrum.clone()
        } else {
            spectrum.resample_log(dim)
        };
        resampled.encode_log(self.log_min, self.log_max)
    }

    /// Recover a physical momentum from an encoded value.
    pub fn decode_momentum(&self, encoded: f32) -> f64 {
        encoded as f64 * self.momentum_scale
    }
}

/// Assemble a batch of samples into model input tensors
/// `(points:[B,P,6], spectra:[B,S])`.
pub fn batch_to_tensors(batch: &[Sample], model: &ModelConfig) -> (Tensor, Tensor) {
    assert!(!batch.is_empty());
    let p = batch[0].points.len() / 6;
    let s = model.spectrum_dim;
    let b = batch.len();
    let mut points = Vec::with_capacity(b * p * 6);
    let mut spectra = Vec::with_capacity(b * s);
    for sample in batch {
        assert_eq!(sample.points.len(), p * 6, "inconsistent cloud sizes");
        assert_eq!(sample.spectrum.len(), s, "inconsistent spectrum sizes");
        points.extend_from_slice(&sample.points);
        spectra.extend_from_slice(&sample.spectrum);
    }
    (
        Tensor::from_vec([b, p, 6], points),
        Tensor::from_vec([b, s], spectra),
    )
}

/// Seeded RNG helper for encoders.
pub fn encoder_rng(seed: u64) -> StdRng {
    StdRng::seed_from_u64(seed)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn point_encoding_shape_and_normalisation() {
        let cfg = EncodeConfig {
            sample_points: 16,
            ..EncodeConfig::default()
        };
        let mut rng = encoder_rng(0);
        let xs = vec![1.0, 3.0];
        let ys = vec![2.0, 2.0];
        let zs = vec![0.5, 0.5];
        let uxs = vec![0.35, -0.35];
        let uys = vec![0.0, 0.0];
        let uzs = vec![0.0, 0.0];
        let pts = cfg.encode_points(
            &xs,
            &ys,
            &zs,
            &uxs,
            &uys,
            &uzs,
            [2.0, 2.0, 0.5],
            [1.0, 1.0, 0.5],
            &mut rng,
        );
        assert_eq!(pts.len(), 16 * 6);
        for chunk in pts.chunks_exact(6) {
            assert!(chunk[0].abs() <= 1.0 + 1e-6);
            assert!((chunk[3].abs() - 1.0).abs() < 1e-6, "u/scale = ±1");
        }
    }

    #[test]
    fn view_encode_is_bit_identical_to_gather_encode() {
        use as_staging::engine::{open_stream, StreamConfig};
        // Publish six particle arrays on a lossless stream, then encode
        // the same region through both paths with identically seeded
        // RNGs: every output f32 must match bit-for-bit.
        let cfg = EncodeConfig {
            sample_points: 64,
            ..EncodeConfig::default()
        };
        let names = ["x", "y", "z", "ux", "uy", "uz"];
        let arrays: Vec<Vec<f64>> = (0..6)
            .map(|k| (0..37).map(|i| (i as f64) * 0.1 + k as f64).collect())
            .collect();
        let (mut writers, mut readers) = open_stream(StreamConfig::default());
        let mut w = writers.remove(0);
        w.begin_step();
        for (name, data) in names.iter().zip(&arrays) {
            w.put_f64(name, data.len() as u64, 0, data);
        }
        w.end_step();
        w.close();
        let mut r = readers.remove(0);
        let mut step = r.begin_step().expect("one step");
        let views: Vec<_> = names.iter().map(|n| step.get_f64_view(n)).collect();
        // Region = every third particle, like a shear-band filter would pick.
        let idx: Vec<usize> = (0..37).step_by(3).collect();
        let gather: Vec<Vec<f64>> = arrays
            .iter()
            .map(|a| idx.iter().map(|&i| a[i]).collect())
            .collect();
        let center = [1.0, 2.0, 3.0];
        let half = [2.0, 2.0, 2.0];
        let mut rng_a = encoder_rng(42);
        let mut rng_b = encoder_rng(42);
        let legacy = cfg.encode_points(
            &gather[0], &gather[1], &gather[2], &gather[3], &gather[4], &gather[5], center, half,
            &mut rng_a,
        );
        let viewed = cfg.encode_points_view(
            &views[0], &views[1], &views[2], &views[3], &views[4], &views[5], &idx, center, half,
            &mut rng_b,
        );
        assert_eq!(legacy.len(), viewed.len());
        for (a, b) in legacy.iter().zip(&viewed) {
            assert_eq!(a.to_bits(), b.to_bits());
        }
        r.end_step(step);
    }

    #[test]
    fn decode_momentum_inverts_encoding() {
        let cfg = EncodeConfig::default();
        let u = 0.21f64;
        let enc = (u / cfg.momentum_scale) as f32;
        assert!((cfg.decode_momentum(enc) - u).abs() < 1e-6);
    }

    #[test]
    fn spectrum_encoding_matches_model_dim() {
        let cfg = EncodeConfig::default();
        let spec = Spectrum::new(
            (1..=64).map(|i| i as f64 * 0.1).collect(),
            (1..=64i32).map(|i| 10f64.powi(-(i % 10))).collect(),
        );
        let enc = cfg.encode_spectrum(&spec, 16);
        assert_eq!(enc.len(), 16);
        assert!(enc.iter().all(|v| (-1.0..=1.0).contains(v)));
    }

    #[test]
    fn batch_assembly() {
        let model = ModelConfig::small();
        let s1 = Sample {
            points: vec![0.0; 8 * 6],
            spectrum: vec![0.5; model.spectrum_dim],
            region: 0,
            step: 1,
        };
        let s2 = Sample {
            points: vec![1.0; 8 * 6],
            spectrum: vec![-0.5; model.spectrum_dim],
            region: 2,
            step: 2,
        };
        let (p, s) = batch_to_tensors(&[s1, s2], &model);
        assert_eq!(p.dims(), &[2, 8, 6]);
        assert_eq!(s.dims(), &[2, model.spectrum_dim]);
        assert_eq!(p.at(&[1, 0, 0]), 1.0);
        assert_eq!(s.at(&[0, 3]), 0.5);
    }
}
