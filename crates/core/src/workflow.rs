//! End-to-end workflow driver: producer thread ∥ consumer thread,
//! loosely coupled through two in-memory SST streams.

use crate::config::WorkflowConfig;
use crate::consumer::{run_consumer, ConsumerReport};
use crate::producer::{run_producer, ProducerReport};
use as_staging::engine::{open_stream, StreamConfig};

/// Combined outcome of one workflow run.
pub struct WorkflowReport {
    /// Producer-side measurements.
    pub producer: ProducerReport,
    /// Consumer-side measurements (includes the trained model).
    pub consumer: ConsumerReport,
    /// Wall seconds for the whole coupled run.
    pub wall_seconds: f64,
}

impl WorkflowReport {
    /// Mean total loss over the last `k` training iterations.
    pub fn tail_loss(&self, k: usize) -> f64 {
        let n = self.consumer.losses.len();
        if n == 0 {
            return f64::NAN;
        }
        let k = k.min(n);
        self.consumer.losses[n - k..]
            .iter()
            .map(|l| l.total)
            .sum::<f64>()
            / k as f64
    }
}

/// Run the full in-transit workflow (blocking; spawns the producer).
pub fn run_workflow(cfg: &WorkflowConfig) -> WorkflowReport {
    let stream_cfg = StreamConfig {
        writers: 1,
        readers: 1,
        queue_limit: cfg.queue_limit,
        plane: cfg.plane,
    };
    let (mut pw, mut pr) = open_stream(stream_cfg);
    let (mut rw, mut rr) = open_stream(stream_cfg);
    let (pw, rw) = (pw.remove(0), rw.remove(0));
    let (pr, rr) = (pr.remove(0), rr.remove(0));

    let t0 = std::time::Instant::now();
    let producer_cfg = cfg.clone();
    let producer = std::thread::spawn(move || run_producer(&producer_cfg, pw, rw));
    let consumer = run_consumer(cfg, pr, rr);
    let producer = producer.join().expect("producer thread panicked");
    let wall_seconds = t0.elapsed().as_secs_f64();

    WorkflowReport {
        producer,
        consumer,
        wall_seconds,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The headline integration check: the full pipeline runs, trains,
    /// and the loss goes down.
    #[test]
    fn end_to_end_workflow_learns() {
        let mut cfg = WorkflowConfig::small();
        cfg.total_steps = 24;
        cfg.steps_per_sample = 4;
        cfg.n_rep = 6;
        let report = run_workflow(&cfg);
        assert_eq!(report.producer.steps, 24);
        assert_eq!(report.producer.windows, 6);
        assert_eq!(report.consumer.windows, 6);
        assert!(report.consumer.samples >= 12, "≥2 regions per window");
        assert!(!report.consumer.losses.is_empty());
        assert!(report.consumer.losses.iter().all(|l| l.total.is_finite()));
        // Learning signal: tail loss below the first iterations' mean.
        let head: f64 = report.consumer.losses[..4]
            .iter()
            .map(|l| l.total)
            .sum::<f64>()
            / 4.0;
        let tail = report.tail_loss(4);
        assert!(
            tail < head,
            "in-transit training should reduce the loss: {head} → {tail}"
        );
        assert!(report.consumer.particle_bytes > 0);
    }

    /// With a queue limit of 1, the producer must observe back-pressure
    /// stalls when the consumer trains slowly.
    #[test]
    fn backpressure_is_visible_to_producer() {
        let mut cfg = WorkflowConfig::small();
        cfg.total_steps = 12;
        cfg.steps_per_sample = 2;
        cfg.queue_limit = 1;
        cfg.n_rep = 8;
        let report = run_workflow(&cfg);
        assert_eq!(report.producer.windows, 6);
        // stall_seconds includes the emit+block time; it must be nonzero
        // when the consumer is rate-limiting.
        assert!(report.producer.stall_seconds >= 0.0);
        assert!(report.wall_seconds > 0.0);
    }
}
