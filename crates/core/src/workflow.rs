//! End-to-end workflow driver: M producer ranks ∥ K consumer ranks,
//! loosely coupled through two in-memory SST streams.
//!
//! The topology generalises the paper's Fig. 3 coupling (§IV-B–D):
//!
//! - **M producers** (`WorkflowConfig::producers`): the KHI box is
//!   slab-decomposed along x via [`as_pic::domain::DistributedSim`]; each
//!   slab runs on its own thread and publishes its particle shard as one
//!   block of a shared multi-writer SST step. The per-window radiation
//!   amplitudes are merged across producer ranks by superposition before
//!   rank 0 emits the spectra — so consumers see *one* coherent global
//!   stream regardless of M.
//! - **K consumers** (`WorkflowConfig::consumers`): each learner rank has
//!   its own [`as_staging::engine::SstReader`] pair and a collective
//!   endpoint ([`as_cluster::collective::Collective`]). SST delivers
//!   every step to every reader; the round-robin owner (`window % K`)
//!   fetches the payload into its rank-local replay buffer, and training
//!   is synchronous DDP: gradients averaged every iteration through
//!   [`as_nn::ddp::sync_gradients_bucketed`] (or its non-blocking
//!   comm-worker twin under [`WorkflowConfig::overlap_grad_sync`]),
//!   parameters bit-identical across ranks (asserted every iteration).
//!
//! The transport behind every endpoint is the
//! [`crate::config::CommBackend`] knob: in-process channels, or the
//! netsim-delayed fabric model that charges Frontier/Summit collective
//! costs while keeping numerics bit-identical (see
//! `tests/comm_backends.rs`).
//!
//! `producers = consumers = 1` dispatches to the original single-domain
//! producer and single-rank consumer code paths, bit-for-bit — existing
//! 1×1 runs keep their exact semantics (and seeds).
//!
//! Consumer pacing follows [`crate::config::ConsumerPolicy`]: blocking
//! every-step (back-pressure throttles the producers) or `DropSteps`
//! (consumers always take the freshest window, skipped windows are
//! counted, and the staging queue depth bounds producer stall). Under
//! `DropSteps`, [`WorkflowReport::consumed_windows`] lists only the
//! windows that were actually trained on; the per-rank
//! [`ConsumerSummary::dropped_windows`] accounts for the rest
//! (`windows + dropped + orphaned = published` on every rank).
//!
//! Fault tolerance is opt-in via [`WorkflowConfig::faults`] (a
//! [`crate::faults::FaultPlan`]). With an **active** plan the driver:
//! arms every collective world with the plan's deterministic message
//! chaos (seeded drop/delay/duplicate — chaos only *delays* traffic);
//! routes consumers through the fault-tolerant drivers
//! ([`crate::consumer::run_consumer_ft`] /
//! [`crate::consumer::run_ddp_consumer_ft`]: learner
//! checkpoint/restart, membership-aware collectives that condemn a
//! silent rank within a bounded budget and re-form the shrunk group);
//! opens **monitored** streams so windows stranded behind a dead rank's
//! departed readers are counted into [`WorkflowReport::lost_windows`];
//! and captures rank panics (injected kills included) as
//! [`RankFailure`] entries instead of tearing down the orchestrator.
//! With the default inert plan the legacy zero-overhead paths run
//! bit-for-bit.

use crate::config::{CommBackend, Placement, WorkflowConfig};
use crate::consumer::{
    run_consumer_ft_serving, run_consumer_serving, run_ddp_consumer_ft_serving,
    run_ddp_consumer_serving, ConsumerReport,
};
use crate::faults::InjectedFault;
use crate::producer::{run_producer, run_sharded_producer, ProducerReport};
use crate::snapshot::SnapshotSink;
use as_cluster::collective::{Collective, NetModel, SimNetComm};
use as_cluster::comm::CommWorld;
use as_staging::engine::{open_stream_monitored, StreamConfig};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::Arc;

/// Which side of the coupled workflow a collective world serves — the
/// netsim backend places the two groups on modelled nodes according to
/// [`Placement`], so producer and consumer worlds may get different
/// node maps (and, inter-node, provably disjoint node sets).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RankGroup {
    /// The M simulation slab ranks.
    Producer,
    /// The K DDP learner ranks (the dedicated gradient world of the
    /// overlap mode counts as this group too — same ranks, same nodes).
    Consumer,
}

/// A rank that terminated by panic instead of returning its report. The
/// driver captures the unwind at the join point (or around the inline
/// rank 0), so one dead rank never tears down the whole workflow.
#[derive(Debug, Clone)]
pub struct RankFailure {
    /// Which side of the coupled workflow the rank belonged to.
    pub group: RankGroup,
    /// The rank within its group.
    pub rank: usize,
    /// True when the panic payload was an [`InjectedFault`] — a
    /// scheduled [`crate::faults::KillMode::Die`] rather than a bug.
    pub injected: bool,
    /// Human-readable panic message.
    pub message: String,
}

/// Classify a join-point panic payload into a [`RankFailure`].
fn failure_of(
    group: RankGroup,
    rank: usize,
    payload: Box<dyn std::any::Any + Send>,
) -> RankFailure {
    if let Some(f) = payload.downcast_ref::<InjectedFault>() {
        return RankFailure {
            group,
            rank: f.rank,
            injected: true,
            message: format!("injected kill at window {}", f.at_window),
        };
    }
    let message = if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "rank panicked (non-string payload)".to_string()
    };
    RankFailure {
        group,
        rank,
        injected: false,
        message,
    }
}

/// Per-consumer-rank digest (the full [`ConsumerReport`] of rank 0 is
/// kept in [`WorkflowReport::consumer`]; peers keep their bookkeeping
/// here and drop their — bit-identical — model copies).
#[derive(Debug, Clone)]
pub struct ConsumerSummary {
    /// Learner rank.
    pub rank: usize,
    /// Windows received (every rank sees every window).
    pub windows: u64,
    /// PIC iteration indices of the windows this rank owned.
    pub owned_windows: Vec<u64>,
    /// Samples pushed into this rank's replay buffer.
    pub samples: u64,
    /// Total loss per training iteration (rank-mean in DDP mode).
    pub losses: Vec<f64>,
    /// Hash of the final parameter bits (equal across ranks under DDP).
    pub param_hash: u64,
    /// Wall seconds in training iterations.
    pub train_seconds: f64,
    /// Bytes fetched from the particle stream by this rank.
    pub particle_bytes: u64,
    /// Windows stranded on one stream after the other ended early.
    pub orphaned_windows: u64,
    /// Windows this rank skipped unread under
    /// [`crate::config::ConsumerPolicy::DropSteps`].
    pub dropped_windows: u64,
    /// Windows the producer published on this rank's streams; equals
    /// `windows + dropped_windows + orphaned_windows + lost_windows`.
    pub published_windows: u64,
    /// Learner-group collective payload bytes observed at this rank's
    /// exit (world-wide counter; equal-ish across ranks — take the max).
    pub comm_bytes: u64,
    /// Modelled fabric seconds charged by the learner group's backend.
    pub comm_model_seconds: f64,
    /// Point-to-point messages the learner group's collectives sent
    /// (world-wide counter, like `comm_bytes` — take the max).
    pub comm_messages: u64,
    /// Windows lost to faults at this rank (rolled back past a restart
    /// or skipped by a scheduled [`crate::faults::FaultEvent`]).
    pub lost_windows: u64,
    /// Checkpoint restores performed after an injected kill.
    pub restarts: u64,
    /// Wall seconds spent in recovery: checkpoint restores plus waiting
    /// out death budgets on peers that were then condemned.
    pub recovery_seconds: f64,
    /// Learner-group shrink events this rank witnessed.
    pub degradations: u64,
    /// Live member count when this rank exited (equals the starting
    /// world size in an unfaulted run).
    pub world_after: usize,
    /// Wire bytes this rank fetched from the two staging streams
    /// (post-codec; equals the logical bytes under the lossless codec).
    pub staging_wire_bytes: u64,
    /// Modelled data-plane seconds charged to this rank's staging reads.
    pub staging_model_seconds: f64,
}

impl ConsumerSummary {
    fn of(report: &ConsumerReport) -> Self {
        Self {
            rank: report.rank,
            windows: report.windows,
            owned_windows: report.owned_windows.clone(),
            samples: report.samples,
            losses: report.losses.iter().map(|l| l.total).collect(),
            param_hash: report.param_hash,
            train_seconds: report.train_seconds,
            particle_bytes: report.particle_bytes,
            orphaned_windows: report.orphaned_windows,
            dropped_windows: report.dropped_windows,
            published_windows: report.published_windows,
            comm_bytes: report.comm_bytes,
            comm_model_seconds: report.comm_model_seconds,
            comm_messages: report.comm_messages,
            lost_windows: report.lost_windows,
            restarts: report.restarts,
            recovery_seconds: report.recovery_seconds,
            degradations: report.degradations,
            world_after: report.world_after,
            staging_wire_bytes: report.staging_wire_bytes,
            staging_model_seconds: report.staging_model_seconds,
        }
    }
}

/// Combined outcome of one workflow run.
pub struct WorkflowReport {
    /// Producer-side aggregate: `steps`/`windows` are the global counts
    /// (identical on every rank), `bytes` sums over ranks, and the time
    /// fields take the per-rank maximum (the critical path).
    pub producer: ProducerReport,
    /// Per-rank producer measurements, in rank order.
    pub producers: Vec<ProducerReport>,
    /// Consumer rank 0's measurements (includes the trained model; under
    /// DDP every rank's model is bit-identical to this one).
    pub consumer: ConsumerReport,
    /// Per-rank consumer digests, in rank order — only ranks that
    /// returned a report (a rank that died past its retry budget shows
    /// up in [`WorkflowReport::failures`] instead).
    pub consumer_summaries: Vec<ConsumerSummary>,
    /// Wall seconds for the whole coupled run.
    pub wall_seconds: f64,
    /// Ranks that terminated by panic instead of returning a report
    /// (injected kills included), in discovery order.
    pub failures: Vec<RankFailure>,
    /// Learner-group shrink events (max over surviving ranks — every
    /// survivor witnesses the same membership transitions).
    pub degradations: u64,
    /// Windows lost to faults across the learner group: rolled back
    /// past a restart, skipped by schedule, or stranded unread behind a
    /// dead rank's departed stream readers.
    pub lost_windows: u64,
}

impl WorkflowReport {
    /// Mean total loss over the last `k` training iterations.
    pub fn tail_loss(&self, k: usize) -> f64 {
        let n = self.consumer.losses.len();
        if n == 0 {
            return f64::NAN;
        }
        let k = k.min(n);
        self.consumer.losses[n - k..]
            .iter()
            .map(|l| l.total)
            .sum::<f64>()
            / k as f64
    }

    /// Streamed windows per wall second — the coupled-loop throughput.
    pub fn windows_per_second(&self) -> f64 {
        if self.wall_seconds > 0.0 {
            self.producer.windows as f64 / self.wall_seconds
        } else {
            0.0
        }
    }

    /// Every owned window across consumer ranks, sorted. Exactly-once
    /// consumption means this equals the emitted iteration list with no
    /// duplicates.
    pub fn consumed_windows(&self) -> Vec<u64> {
        let mut all: Vec<u64> = self
            .consumer_summaries
            .iter()
            .flat_map(|s| s.owned_windows.iter().copied())
            .collect();
        all.sort_unstable();
        all
    }

    /// Inter-rank payload bytes moved by the producer group's collective
    /// backend (halo exchange, particle migration, window merges). The
    /// counter is world-wide, so the per-rank maximum is the final total.
    pub fn producer_comm_bytes(&self) -> u64 {
        self.producers
            .iter()
            .map(|p| p.comm_bytes)
            .max()
            .unwrap_or(0)
    }

    /// Inter-rank payload bytes moved by the learner group's collective
    /// backend (gradient buckets, loss means, go/no-go, hash checks).
    pub fn consumer_comm_bytes(&self) -> u64 {
        self.consumer_summaries
            .iter()
            .map(|s| s.comm_bytes)
            .max()
            .unwrap_or(0)
    }

    /// Point-to-point messages sent by the producer group's collectives —
    /// the latency-term driver the log-depth algorithms shrink on the
    /// critical path. World-wide monotone counter: per-rank max is the
    /// total.
    pub fn producer_comm_messages(&self) -> u64 {
        self.producers
            .iter()
            .map(|p| p.comm_messages)
            .max()
            .unwrap_or(0)
    }

    /// Point-to-point messages sent by the learner group's collectives.
    pub fn consumer_comm_messages(&self) -> u64 {
        self.consumer_summaries
            .iter()
            .map(|s| s.comm_messages)
            .max()
            .unwrap_or(0)
    }

    /// Modelled fabric seconds across both groups (nonzero only under
    /// [`crate::config::CommBackend::NetSim`]).
    pub fn comm_model_seconds(&self) -> f64 {
        let p = self
            .producers
            .iter()
            .map(|r| r.comm_model_seconds)
            .fold(0.0, f64::max);
        let c = self
            .consumer_summaries
            .iter()
            .map(|s| s.comm_model_seconds)
            .fold(0.0, f64::max);
        p + c
    }

    /// Wire bytes the staging data plane carried — every producer rank's
    /// published window payload, **post-codec** (equals
    /// [`ProducerReport::bytes`] under [`as_staging::codec::WireCodec::None`],
    /// smaller under a compressing codec). With producer + consumer
    /// collective bytes this completes the whole-run traffic sum.
    pub fn staging_wire_bytes(&self) -> u64 {
        self.producer.staging_wire_bytes
    }

    /// Consumer-side staging wire bytes actually fetched, summed over
    /// learner ranks (each rank fetches only its owned windows; under
    /// `DropSteps`, skipped windows are never fetched, so this can be
    /// below [`Self::staging_wire_bytes`]).
    pub fn consumer_staging_wire_bytes(&self) -> u64 {
        self.consumer_summaries
            .iter()
            .map(|s| s.staging_wire_bytes)
            .sum()
    }

    /// Modelled staging data-plane seconds on the critical path: the
    /// slowest producer rank's publish charge plus the slowest learner
    /// rank's fetch charge (the two phases pipeline across windows, but
    /// per window they serialize writer → queue → reader).
    pub fn staging_model_seconds(&self) -> f64 {
        let p = self.producer.staging_model_seconds;
        let c = self
            .consumer_summaries
            .iter()
            .map(|s| s.staging_model_seconds)
            .fold(0.0, f64::max);
        p + c
    }
}

fn aggregate_producer(reports: &[ProducerReport]) -> ProducerReport {
    let mut agg = reports[0].clone();
    agg.bytes = reports.iter().map(|r| r.bytes).sum();
    agg.sim_seconds = reports.iter().map(|r| r.sim_seconds).fold(0.0, f64::max);
    agg.emit_seconds = reports.iter().map(|r| r.emit_seconds).fold(0.0, f64::max);
    agg.stall_seconds = reports.iter().map(|r| r.stall_seconds).fold(0.0, f64::max);
    // The collective byte/model-time counters are world-wide and
    // monotone: the last rank out observed the final totals.
    agg.comm_bytes = reports.iter().map(|r| r.comm_bytes).max().unwrap_or(0);
    agg.comm_messages = reports.iter().map(|r| r.comm_messages).max().unwrap_or(0);
    agg.comm_model_seconds = reports
        .iter()
        .map(|r| r.comm_model_seconds)
        .fold(0.0, f64::max);
    // Wire bytes sum over ranks (each rank published its own blocks);
    // modelled data-plane time is a critical path, like the wall times.
    agg.staging_wire_bytes = reports.iter().map(|r| r.staging_wire_bytes).sum();
    agg.staging_model_seconds = reports
        .iter()
        .map(|r| r.staging_model_seconds)
        .fold(0.0, f64::max);
    agg
}

/// Run the full in-transit workflow (blocking; spawns M producer threads
/// and K−1 consumer threads, consumer rank 0 runs on the caller).
///
/// This is the **only** place concrete collective backends are
/// constructed: [`CommBackend`] picks the transport, and one world is
/// built per rank group (producers; consumers; plus a second consumer
/// world for the comm-worker when
/// [`WorkflowConfig::overlap_grad_sync`] is on). Everything downstream
/// is generic over [`Collective`].
pub fn run_workflow(cfg: &WorkflowConfig) -> WorkflowReport {
    run_workflow_with_sink(cfg, None)
}

/// [`run_workflow`] with an optional [`SnapshotSink`] — the serving-tier
/// entry point. With [`WorkflowConfig::serving`] set and a sink given,
/// the learner publishes immutable versioned
/// [`crate::snapshot::ModelSnapshot`]s to it every `publish_every`
/// training iterations (the `as-serve` inference engine hot-swaps them
/// in mid-traffic). With `None` the run is the legacy workflow
/// bit-for-bit.
pub fn run_workflow_with_sink(
    cfg: &WorkflowConfig,
    sink: Option<Arc<dyn SnapshotSink>>,
) -> WorkflowReport {
    let algo = cfg.collective_algo;
    // An active fault plan arms every world with tolerant endpoints and
    // the plan's deterministic message chaos; an inert plan keeps the
    // legacy zero-overhead transport.
    let faults = if cfg.faults.active() {
        Some(cfg.faults.comm_faults())
    } else {
        None
    };
    match cfg.backend {
        CommBackend::InProcess => {
            run_workflow_on(cfg, sink, move |n, _group| match faults.clone() {
                Some(f) => CommWorld::with_faults(n, algo, f).into_endpoints(),
                None => CommWorld::with_algo(n, algo).into_endpoints(),
            })
        }
        CommBackend::NetSim {
            machine,
            time_scale,
        } => {
            let placement = cfg.placement;
            let producers = cfg.producers;
            run_workflow_on(cfg, sink, move |n, group| {
                let gpus = machine.gpus_per_node.max(1);
                // Placement decides how this group's ranks map onto
                // modelled nodes. Intra-node splits each node between the
                // two groups (the paper's 4 sim + 4 train GCDs per node):
                // a group packs gpus/2 ranks per node, every NIC is still
                // shared by the node's full GCD complement, and both
                // groups start at node 0 — so cross-group neighbours are
                // co-resident and intra-group hops often stay on-node.
                // Inter-node gives whole nodes to one side: full density,
                // and the consumer group's nodes start after the last
                // producer node, making the node sets disjoint.
                let (group_ranks_per_node, node_offset) = match placement {
                    Placement::IntraNode => ((gpus / 2).max(1), 0),
                    Placement::InterNode => (
                        gpus,
                        match group {
                            RankGroup::Producer => 0,
                            RankGroup::Consumer => producers.div_ceil(gpus),
                        },
                    ),
                };
                let model = NetModel::from_machine_placed(
                    &machine,
                    n,
                    group_ranks_per_node,
                    gpus,
                    node_offset,
                    time_scale,
                );
                match faults.clone() {
                    Some(f) => SimNetComm::wrap_world(
                        CommWorld::with_faults(n, algo, f).into_endpoints(),
                        model,
                    ),
                    None => SimNetComm::world_with_algo(n, model, algo),
                }
            })
        }
    }
}

/// The generic workflow driver: `make_world(n, group)` supplies a fresh
/// `n`-rank collective world of the chosen backend for each rank group.
fn run_workflow_on<C, F>(
    cfg: &WorkflowConfig,
    sink: Option<Arc<dyn SnapshotSink>>,
    make_world: F,
) -> WorkflowReport
where
    C: Collective,
    F: Fn(usize, RankGroup) -> Vec<C>,
{
    cfg.validate_topology();
    let m = cfg.producers;
    let k = cfg.consumers;
    let ft_active = cfg.faults.active();
    let stream_cfg = StreamConfig {
        writers: m,
        readers: k,
        queue_limit: cfg.effective_queue_limit(),
        plane: cfg.data_plane,
        codec: cfg.wire_codec,
    };
    // Monitored streams: the monitors survive the run and report the
    // windows a dead rank's departed readers left unconsumed.
    let (pw, mut pr, p_monitor) = open_stream_monitored(stream_cfg);
    let (rw, mut rr, _r_monitor) = open_stream_monitored(stream_cfg);

    let t0 = std::time::Instant::now();

    // Producer side: M slab ranks (or the legacy single-domain path).
    let producer_handles: Vec<std::thread::JoinHandle<ProducerReport>> = if m == 1 {
        let (pw0, rw0) = (
            pw.into_iter()
                .next()
                .unwrap_or_else(|| panic!("stream opened with one writer")),
            rw.into_iter()
                .next()
                .unwrap_or_else(|| panic!("stream opened with one writer")),
        );
        let producer_cfg = cfg.clone();
        vec![std::thread::spawn(move || {
            run_producer(&producer_cfg, pw0, rw0)
        })]
    } else {
        let endpoints = make_world(m, RankGroup::Producer);
        endpoints
            .into_iter()
            .zip(pw.into_iter().zip(rw))
            .map(|(comm, (pw_i, rw_i))| {
                let producer_cfg = cfg.clone();
                std::thread::spawn(move || run_sharded_producer(&producer_cfg, comm, pw_i, rw_i))
            })
            .collect()
    };

    // Consumer side: rank 0 inline, ranks 1..K on threads. The overlap
    // mode gets a second, dedicated world for the gradient comm-worker
    // threads (one endpoint per rank, mirroring the main world).
    let mut failures: Vec<RankFailure> = Vec::new();
    let (rank0_result, peer_results) = if k == 1 {
        let (pr0, rr0) = (pr.remove(0), rr.remove(0));
        let sink0 = sink.clone();
        let r0 = catch_unwind(AssertUnwindSafe(|| {
            if ft_active {
                run_consumer_ft_serving(cfg, pr0, rr0, sink0)
            } else {
                run_consumer_serving(cfg, pr0, rr0, sink0)
            }
        }));
        (r0, Vec::new())
    } else {
        let mut endpoints = make_world(k, RankGroup::Consumer);
        // The FT path runs its gradient sync on the main world (no
        // comm-worker), so the dedicated gradient world only exists on
        // the legacy overlapped path.
        let mut grad_endpoints: Vec<Option<C>> = if cfg.overlap_grad_sync && !ft_active {
            make_world(k, RankGroup::Consumer)
                .into_iter()
                .map(Some)
                .collect()
        } else {
            (0..k).map(|_| None).collect()
        };
        let comm0 = endpoints.remove(0);
        let grad0 = grad_endpoints.remove(0);
        let (pr0, rr0) = (pr.remove(0), rr.remove(0));
        let peer_handles: Vec<_> = endpoints
            .into_iter()
            .zip(grad_endpoints)
            .zip(pr.into_iter().zip(rr))
            .map(|((comm, grad), (pr_i, rr_i))| {
                let consumer_cfg = cfg.clone();
                let sink_i = sink.clone();
                std::thread::spawn(move || {
                    if consumer_cfg.faults.active() {
                        run_ddp_consumer_ft_serving(&consumer_cfg, comm, pr_i, rr_i, sink_i)
                    } else {
                        run_ddp_consumer_serving(&consumer_cfg, comm, grad, pr_i, rr_i, sink_i)
                    }
                })
            })
            .collect();
        let sink0 = sink.clone();
        let rank0 = catch_unwind(AssertUnwindSafe(|| {
            if ft_active {
                run_ddp_consumer_ft_serving(cfg, comm0, pr0, rr0, sink0)
            } else {
                run_ddp_consumer_serving(cfg, comm0, grad0, pr0, rr0, sink0)
            }
        }));
        let peers: Vec<_> = peer_handles.into_iter().map(|h| h.join()).collect();
        (rank0, peers)
    };

    let mut peer_reports: Vec<ConsumerReport> = Vec::new();
    for (i, res) in peer_results.into_iter().enumerate() {
        match res {
            Ok(r) => peer_reports.push(r),
            Err(p) => failures.push(failure_of(RankGroup::Consumer, i + 1, p)),
        }
    }
    let (rank0, rank0_alive) = match rank0_result {
        Ok(r) => (r, true),
        Err(p) => {
            failures.push(failure_of(RankGroup::Consumer, 0, p));
            (placeholder_consumer_report(cfg, k), false)
        }
    };

    let mut producers: Vec<ProducerReport> = Vec::new();
    for (i, h) in producer_handles.into_iter().enumerate() {
        match h.join() {
            Ok(r) => producers.push(r),
            Err(p) => failures.push(failure_of(RankGroup::Producer, i, p)),
        }
    }
    if producers.is_empty() {
        producers.push(ProducerReport::zero());
    }
    let wall_seconds = t0.elapsed().as_secs_f64();

    let mut consumer_summaries: Vec<ConsumerSummary> = Vec::new();
    if rank0_alive {
        consumer_summaries.push(ConsumerSummary::of(&rank0));
    }
    consumer_summaries.extend(peer_reports.iter().map(ConsumerSummary::of));
    peer_reports.clear(); // peers' models are bit-identical to rank 0's
    consumer_summaries.sort_by_key(|s| s.rank);

    let degradations = consumer_summaries
        .iter()
        .map(|s| s.degradations)
        .max()
        .unwrap_or(0);
    // Lost windows: what survivors rolled back or skipped, plus what a
    // dead rank's departed readers left unconsumed on its streams.
    let lost_windows = consumer_summaries
        .iter()
        .map(|s| s.lost_windows)
        .sum::<u64>()
        + p_monitor.departed_lost();

    WorkflowReport {
        producer: aggregate_producer(&producers),
        producers,
        consumer: rank0,
        consumer_summaries,
        wall_seconds,
        failures,
        degradations,
        lost_windows,
    }
}

/// Stand-in report for a consumer rank 0 that died and never returned:
/// a fresh (untrained) model and all-zero counters, so the report shape
/// survives while [`WorkflowReport::failures`] records the death.
fn placeholder_consumer_report(cfg: &WorkflowConfig, world: usize) -> ConsumerReport {
    ConsumerReport {
        model: as_nn::model::ArtificialScientistModel::new(cfg.model.clone(), cfg.seed),
        losses: Vec::new(),
        windows: 0,
        samples: 0,
        train_seconds: 0.0,
        particle_bytes: 0,
        rank: 0,
        world,
        owned_windows: Vec::new(),
        orphaned_windows: 0,
        dropped_windows: 0,
        published_windows: 0,
        param_hash: 0,
        param_hashes: Vec::new(),
        comm_bytes: 0,
        comm_model_seconds: 0.0,
        comm_messages: 0,
        lost_windows: 0,
        restarts: 0,
        recovery_seconds: 0.0,
        degradations: 0,
        world_after: 0,
        staging_wire_bytes: 0,
        staging_model_seconds: 0.0,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The headline integration check: the full pipeline runs, trains,
    /// and the loss goes down.
    #[test]
    fn end_to_end_workflow_learns() {
        let mut cfg = WorkflowConfig::small();
        cfg.total_steps = 24;
        cfg.steps_per_sample = 4;
        cfg.n_rep = 6;
        let report = run_workflow(&cfg);
        assert_eq!(report.producer.steps, 24);
        assert_eq!(report.producer.windows, 6);
        assert_eq!(report.consumer.windows, 6);
        assert!(report.consumer.samples >= 12, "≥2 regions per window");
        assert!(!report.consumer.losses.is_empty());
        assert!(report.consumer.losses.iter().all(|l| l.total.is_finite()));
        // Learning signal: tail loss below the first iterations' mean.
        let head: f64 = report.consumer.losses[..4]
            .iter()
            .map(|l| l.total)
            .sum::<f64>()
            / 4.0;
        let tail = report.tail_loss(4);
        assert!(
            tail < head,
            "in-transit training should reduce the loss: {head} → {tail}"
        );
        assert!(report.consumer.particle_bytes > 0);
        // Honest telemetry: the producer reports its real published
        // volume, not the placeholder zero.
        assert!(report.producer.bytes > 0, "published bytes must be real");
        assert_eq!(report.consumer.orphaned_windows, 0);
    }

    /// With a queue limit of 1, the producer must observe back-pressure
    /// stalls when the consumer trains slowly.
    #[test]
    fn backpressure_is_visible_to_producer() {
        let mut cfg = WorkflowConfig::small();
        cfg.total_steps = 12;
        cfg.steps_per_sample = 2;
        cfg.queue_limit = 1;
        cfg.n_rep = 8;
        let report = run_workflow(&cfg);
        assert_eq!(report.producer.windows, 6);
        // stall_seconds counts only time blocked on the full SST queue:
        // with queue_limit 1 and a consumer doing 8 training iterations
        // per window it must be strictly positive, and it can never
        // exceed the emit wall time that contains it.
        assert!(
            report.producer.stall_seconds > 0.0,
            "a rate-limiting consumer must register real stall time"
        );
        assert!(report.producer.stall_seconds <= report.producer.emit_seconds);
        assert!(report.wall_seconds > 0.0);
    }

    /// A 2×2 topology must behave like a sharded version of the same
    /// physics: same windows, exactly-once consumption, synced ranks.
    #[test]
    fn two_by_two_topology_runs_and_stays_synced() {
        let mut cfg = WorkflowConfig::small();
        cfg.total_steps = 16;
        cfg.steps_per_sample = 4;
        cfg.n_rep = 3;
        cfg.producers = 2;
        cfg.consumers = 2;
        let report = run_workflow(&cfg);
        assert_eq!(report.producers.len(), 2);
        assert_eq!(report.consumer_summaries.len(), 2);
        assert_eq!(report.producer.windows, 4);
        // Every rank saw every window; ownership partitioned them.
        for s in &report.consumer_summaries {
            assert_eq!(s.windows, 4);
            assert_eq!(s.owned_windows.len(), 2, "round-robin share");
        }
        assert_eq!(report.consumed_windows(), vec![4, 8, 12, 16]);
        // Bit-identical parameters across the learner group.
        let h0 = report.consumer_summaries[0].param_hash;
        assert!(report.consumer_summaries.iter().all(|s| s.param_hash == h0));
        assert!(report.producer.bytes > 0);
    }
}
