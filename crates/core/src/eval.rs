//! Inversion-quality evaluation — the Fig. 9 analysis.
//!
//! Given a trained model and a ground-truth simulation snapshot, produce
//! per flow region:
//! (a) the observed radiation spectrum vs the model's forward (surrogate)
//!     prediction from the particle cloud;
//! (b) the ground-truth momentum distribution;
//! (c) the momentum distribution of particle clouds sampled by inverting
//!     the observed spectrum through the INN.

use crate::config::WorkflowConfig;
use crate::consumer::bounding_box;
use crate::encode::Sample;
use as_nn::model::ArtificialScientistModel;
use as_pic::diag::{FlowRegion, MomentumHistogram};
use as_pic::sim::Simulation;
use as_radiation::plugin::RadiationPlugin;
use as_radiation::spectrum::Spectrum;
use as_tensor::{Tensor, TensorRng};
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Evaluation artefacts for one flow region.
pub struct RegionEval {
    /// Region label (Fig. 9 legend).
    pub label: &'static str,
    /// Detector frequencies.
    pub frequencies: Vec<f64>,
    /// Ground-truth encoded spectrum (the INN condition actually used).
    pub gt_spectrum: Vec<f32>,
    /// Model-predicted encoded spectrum (surrogate forward pass).
    pub pred_spectrum: Vec<f32>,
    /// Ground-truth p_x histogram.
    pub gt_hist: MomentumHistogram,
    /// Predicted p_x histogram from inverted clouds.
    pub pred_hist: MomentumHistogram,
}

/// Full Fig. 9-style evaluation.
pub struct InversionEval {
    /// One entry per flow region (approaching, receding, vortex).
    pub regions: Vec<RegionEval>,
}

impl InversionEval {
    /// Evaluate `model` against the current state of `sim` whose windowed
    /// radiation lives in `radiation`. `samples_per_spectrum` controls how
    /// many inverse draws build the predicted histogram.
    pub fn run(
        cfg: &WorkflowConfig,
        model: &ArtificialScientistModel,
        sim: &Simulation,
        radiation: &RadiationPlugin,
        samples_per_spectrum: usize,
        hist_range: (f64, f64),
        hist_bins: usize,
    ) -> Self {
        let (_, ly, _) = cfg.grid.extents();
        let sp = &sim.species[0];
        let spectra = radiation.spectra();
        let mut enc_rng = StdRng::seed_from_u64(cfg.seed ^ 0xE7A1);
        let mut inv_rng = TensorRng::seeded(cfg.seed ^ 0x1272);
        let mut regions = Vec::new();

        for (r, flow) in FlowRegion::all().into_iter().enumerate() {
            let idx: Vec<usize> = (0..sp.len())
                .filter(|&i| FlowRegion::classify(sp.y[i], ly, cfg.shear_width) == flow)
                .collect();
            if idx.is_empty() {
                continue;
            }
            let pick = |src: &[f64]| -> Vec<f64> { idx.iter().map(|&i| src[i]).collect() };
            let (rx, ry, rz) = (pick(&sp.x), pick(&sp.y), pick(&sp.z));
            let (rux, ruy, ruz) = (pick(&sp.ux), pick(&sp.uy), pick(&sp.uz));
            let rw: Vec<f64> = idx.iter().map(|&i| sp.w[i]).collect();

            // Encoded GT sample.
            let (center, half) = bounding_box(&rx, &ry, &rz);
            let points = cfg.encode.encode_points(
                &rx,
                &ry,
                &rz,
                &rux,
                &ruy,
                &ruz,
                center,
                half,
                &mut enc_rng,
            );
            let spec = Spectrum::new(
                cfg.detector.frequencies.clone(),
                spectra[r][0].intensity.clone(),
            );
            let gt_spectrum = cfg.encode.encode_spectrum(&spec, cfg.model.spectrum_dim);
            let sample = Sample {
                points,
                spectrum: gt_spectrum.clone(),
                region: r,
                step: sim.step_index,
            };

            // (a) surrogate forward prediction.
            let p = sample.points.len() / 6;
            let cloud = Tensor::from_vec([1, p, 6], sample.points.clone());
            let pred_spectrum: Vec<f32> = model.predict_spectrum(&cloud).into_vec();

            // (b) GT momentum histogram.
            let gt_hist =
                MomentumHistogram::build(&rux, &rw, hist_range.0, hist_range.1, hist_bins);

            // (c) inversion: sample clouds conditioned on the GT spectrum.
            let spec_t = Tensor::from_vec([1, cfg.model.spectrum_dim], gt_spectrum.clone());
            let clouds = model.invert_radiation(&spec_t, samples_per_spectrum, &mut inv_rng);
            let mut px = Vec::new();
            let d = clouds.dims()[2];
            for v in clouds.data().chunks_exact(d) {
                px.push(cfg.encode.decode_momentum(v[3]));
            }
            let ones = vec![1.0; px.len()];
            let pred_hist =
                MomentumHistogram::build(&px, &ones, hist_range.0, hist_range.1, hist_bins);

            regions.push(RegionEval {
                label: flow.label(),
                frequencies: cfg.detector.frequencies.clone(),
                gt_spectrum,
                pred_spectrum,
                gt_hist,
                pred_hist,
            });
        }
        Self { regions }
    }

    /// Mean-squared error between GT and predicted encoded spectra,
    /// averaged over regions (the quantitative Fig. 9(a) summary).
    pub fn spectrum_mse(&self) -> f64 {
        let mut acc = 0.0;
        let mut n = 0usize;
        for r in &self.regions {
            for (a, b) in r.gt_spectrum.iter().zip(&r.pred_spectrum) {
                acc += ((a - b) as f64).powi(2);
                n += 1;
            }
        }
        if n == 0 {
            f64::NAN
        } else {
            acc / n as f64
        }
    }

    /// |mean(GT) − mean(pred)| of the p_x distribution per region.
    pub fn momentum_mean_errors(&self) -> Vec<(&'static str, f64)> {
        self.regions
            .iter()
            .map(|r| (r.label, (r.gt_hist.mean() - r.pred_hist.mean()).abs()))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use as_pic::plugin::Plugin;
    use as_radiation::plugin::RegionMode;

    #[test]
    fn eval_produces_three_regions_with_consistent_shapes() {
        let cfg = WorkflowConfig::small();
        let mut sim = cfg.khi.build(cfg.grid);
        let mut rad = RadiationPlugin::new(
            cfg.detector.clone(),
            RegionMode::FlowRegions {
                shear_width: cfg.shear_width,
            },
            0,
        );
        for _ in 0..3 {
            sim.step();
            rad.after_step(&sim);
        }
        let model = ArtificialScientistModel::new(cfg.model.clone(), 3);
        let eval = InversionEval::run(&cfg, &model, &sim, &rad, 4, (-0.9, 0.9), 21);
        assert_eq!(eval.regions.len(), 3);
        for r in &eval.regions {
            assert_eq!(r.gt_spectrum.len(), cfg.model.spectrum_dim);
            assert_eq!(r.pred_spectrum.len(), cfg.model.spectrum_dim);
            assert_eq!(r.gt_hist.counts.len(), 21);
            assert_eq!(r.pred_hist.counts.len(), 21);
        }
        assert!(eval.spectrum_mse().is_finite());
        assert_eq!(eval.momentum_mean_errors().len(), 3);
    }

    #[test]
    fn gt_histograms_reflect_stream_structure_even_untrained() {
        // Region ground truths must show ± stream means regardless of the
        // model (pure data check through the eval path).
        let cfg = WorkflowConfig::small();
        let mut sim = cfg.khi.build(cfg.grid);
        let mut rad = RadiationPlugin::new(
            cfg.detector.clone(),
            RegionMode::FlowRegions {
                shear_width: cfg.shear_width,
            },
            0,
        );
        sim.step();
        rad.after_step(&sim);
        let model = ArtificialScientistModel::new(cfg.model.clone(), 4);
        let eval = InversionEval::run(&cfg, &model, &sim, &rad, 2, (-0.9, 0.9), 31);
        let approaching = &eval.regions[0];
        let receding = &eval.regions[1];
        assert!(approaching.gt_hist.mean() > 0.1);
        assert!(receding.gt_hist.mean() < -0.1);
    }
}
