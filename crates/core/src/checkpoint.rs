//! Learner checkpoint/restart.
//!
//! [`LearnerCheckpoint`] captures everything a consumer rank needs to
//! resume training bit-identically after a kill: model parameters, both
//! Adam states, the full replay buffer (samples + its RNG), the replay
//! schedule counters, the encode and training RNG streams, and the
//! learner's progress counters (windows, samples, per-iteration losses
//! and `param_hash` history — the DDP step counter lives in the Adam
//! `step` fields). The container mirrors the shape of
//! [`as_pic::checkpoint::Checkpoint`]: flat `BTreeMap`s of named `f64`
//! arrays and scalars, plus a third map of raw `u64` words for RNG
//! states and counters, so the snapshot stays serializable and
//! diff-friendly. `f32` model data round-trips through `f64` losslessly.
//!
//! A restore rolls the learner state back to the capture point; windows
//! consumed from the stream after the capture are physically gone (SST
//! steps cannot be re-read) and are accounted as *lost* by the caller.

use std::collections::BTreeMap;

use as_nn::model::{ArtificialScientistModel, LossReport, ModelOptimizer};
use as_nn::optim::{AdamState, ParamVisitor};
use as_replay::{BufferState, ReplaySchedule, TrainingBuffer};
use as_tensor::{Tensor, TensorRng};
use rand::rngs::StdRng;

use crate::encode::Sample;

/// Non-tensor learner progress restored alongside the checkpoint.
#[derive(Debug, Clone, PartialEq)]
pub struct LearnerProgress {
    /// Windows processed so far.
    pub windows: u64,
    /// Samples pushed into the buffer so far.
    pub samples: u64,
    /// PIC iteration indices of the windows this rank owned, in order.
    pub owned_windows: Vec<u64>,
    /// Per-iteration loss history.
    pub losses: Vec<LossReport>,
    /// Per-iteration `param_hash` history.
    pub param_hashes: Vec<u64>,
}

/// A complete learner snapshot (see module docs).
#[derive(Debug, Clone, PartialEq, Default)]
pub struct LearnerCheckpoint {
    /// Named `f64` arrays: model parameters, Adam moments, buffer
    /// sample payloads, loss history.
    pub arrays: BTreeMap<String, Vec<f64>>,
    /// Named scalars.
    pub scalars: BTreeMap<String, f64>,
    /// Named raw `u64` words: RNG states and integer counters.
    pub words: BTreeMap<String, Vec<u64>>,
}

/// Visitor that snapshots every parameter tensor as an `f64` array.
struct CaptureParams {
    params: Vec<Vec<f64>>,
}

impl ParamVisitor for CaptureParams {
    fn visit(&mut self, param: &mut Tensor, _grad: &mut Tensor) {
        self.params
            .push(param.data().iter().map(|&v| v as f64).collect());
    }
}

/// Visitor that writes captured arrays back into the parameter tensors.
struct RestoreParams<'a> {
    params: &'a [Vec<f64>],
    cursor: usize,
}

impl ParamVisitor for RestoreParams<'_> {
    fn visit(&mut self, param: &mut Tensor, _grad: &mut Tensor) {
        let src = &self.params[self.cursor];
        self.cursor += 1;
        let dst = param.data_mut();
        assert_eq!(dst.len(), src.len(), "checkpoint/model shape mismatch");
        for (d, &s) in dst.iter_mut().zip(src.iter()) {
            *d = s as f32;
        }
    }
}

fn put_adam(ckpt: &mut LearnerCheckpoint, group: &str, s: &AdamState) {
    ckpt.words
        .insert(format!("adam/{group}/step"), vec![s.step]);
    for (i, m) in s.m.iter().enumerate() {
        ckpt.arrays.insert(
            format!("adam/{group}/m{i:04}"),
            m.iter().map(|&v| v as f64).collect(),
        );
    }
    for (i, v) in s.v.iter().enumerate() {
        ckpt.arrays.insert(
            format!("adam/{group}/v{i:04}"),
            v.iter().map(|&v| v as f64).collect(),
        );
    }
}

fn take_adam(ckpt: &LearnerCheckpoint, group: &str) -> AdamState {
    let step = ckpt.words[&format!("adam/{group}/step")][0];
    let collect = |prefix: &str| -> Vec<Vec<f32>> {
        let mut out = Vec::new();
        while let Some(a) = ckpt
            .arrays
            .get(&format!("adam/{group}/{prefix}{:04}", out.len()))
        {
            out.push(a.iter().map(|&v| v as f32).collect());
        }
        out
    };
    AdamState {
        step,
        m: collect("m"),
        v: collect("v"),
    }
}

fn put_samples(ckpt: &mut LearnerCheckpoint, group: &str, samples: &[Sample]) {
    for (i, s) in samples.iter().enumerate() {
        ckpt.arrays.insert(
            format!("buffer/{group}/{i:04}/points"),
            s.points.iter().map(|&v| v as f64).collect(),
        );
        ckpt.arrays.insert(
            format!("buffer/{group}/{i:04}/spectrum"),
            s.spectrum.iter().map(|&v| v as f64).collect(),
        );
        ckpt.words.insert(
            format!("buffer/{group}/{i:04}/meta"),
            vec![s.region as u64, s.step],
        );
    }
}

fn take_samples(ckpt: &LearnerCheckpoint, group: &str, n: usize) -> Vec<Sample> {
    (0..n)
        .map(|i| {
            let points = &ckpt.arrays[&format!("buffer/{group}/{i:04}/points")];
            let spectrum = &ckpt.arrays[&format!("buffer/{group}/{i:04}/spectrum")];
            let meta = &ckpt.words[&format!("buffer/{group}/{i:04}/meta")];
            Sample {
                points: points.iter().map(|&v| v as f32).collect(),
                spectrum: spectrum.iter().map(|&v| v as f32).collect(),
                region: meta[0] as usize,
                step: meta[1],
            }
        })
        .collect()
}

impl LearnerCheckpoint {
    /// Snapshot the full learner state. Capture never mutates anything —
    /// a run that checkpoints is bit-identical to one that does not.
    #[allow(clippy::too_many_arguments)]
    pub fn capture(
        model: &mut ArtificialScientistModel,
        opt: &ModelOptimizer,
        buffer: &TrainingBuffer<Sample>,
        schedule: &ReplaySchedule,
        enc_rng: &StdRng,
        train_rng: &TensorRng,
        progress: &LearnerProgress,
    ) -> Self {
        let mut ckpt = LearnerCheckpoint::default();

        let mut cap = CaptureParams { params: Vec::new() };
        model.visit_all(&mut cap);
        for (i, p) in cap.params.iter().enumerate() {
            ckpt.arrays.insert(format!("model/p{i:04}"), p.clone());
        }

        put_adam(&mut ckpt, "vae", &opt.vae.state());
        put_adam(&mut ckpt, "inn", &opt.inn.state());

        let bs: BufferState<Sample> = buffer.state();
        put_samples(&mut ckpt, "now", &bs.now);
        put_samples(&mut ckpt, "ep", &bs.ep);
        ckpt.words.insert(
            "buffer/len".into(),
            vec![bs.now.len() as u64, bs.ep.len() as u64],
        );
        ckpt.words.insert("buffer/rng".into(), bs.rng.to_vec());
        ckpt.words
            .insert("buffer/counts".into(), vec![bs.received, bs.evicted]);

        let (steps, iters) = schedule.counts();
        ckpt.words.insert("schedule".into(), vec![steps, iters]);
        ckpt.words
            .insert("rng/enc".into(), enc_rng.state().to_vec());
        ckpt.words
            .insert("rng/train".into(), train_rng.state().to_vec());

        ckpt.words
            .insert("progress".into(), vec![progress.windows, progress.samples]);
        ckpt.words
            .insert("owned_windows".into(), progress.owned_windows.clone());
        ckpt.words
            .insert("param_hashes".into(), progress.param_hashes.clone());
        for (name, get) in [
            ("cd", (|l: &LossReport| l.cd) as fn(&LossReport) -> f64),
            ("kl", |l| l.kl),
            ("mse", |l| l.mse),
            ("mmd_z", |l| l.mmd_z),
            ("mmd_n", |l| l.mmd_n),
            ("total", |l| l.total),
        ] {
            ckpt.arrays.insert(
                format!("losses/{name}"),
                progress.losses.iter().map(get).collect(),
            );
        }
        ckpt
    }

    /// Windows counter at capture time.
    pub fn windows(&self) -> u64 {
        self.words["progress"][0]
    }

    /// Restore the learner to the captured state, returning the restored
    /// progress counters. Panics on shape mismatch — a checkpoint only
    /// fits the configuration that produced it.
    pub fn restore(
        &self,
        model: &mut ArtificialScientistModel,
        opt: &mut ModelOptimizer,
        buffer: &mut TrainingBuffer<Sample>,
        schedule: &mut ReplaySchedule,
        enc_rng: &mut StdRng,
        train_rng: &mut TensorRng,
    ) -> LearnerProgress {
        let mut params = Vec::new();
        while let Some(p) = self.arrays.get(&format!("model/p{:04}", params.len())) {
            params.push(p.clone());
        }
        let mut rv = RestoreParams {
            params: &params,
            cursor: 0,
        };
        model.visit_all(&mut rv);
        assert_eq!(rv.cursor, params.len(), "checkpoint/model param count");

        opt.vae.restore(take_adam(self, "vae"));
        opt.inn.restore(take_adam(self, "inn"));

        let len = &self.words["buffer/len"];
        let rng_words = &self.words["buffer/rng"];
        let counts = &self.words["buffer/counts"];
        buffer.restore(BufferState {
            now: take_samples(self, "now", len[0] as usize),
            ep: take_samples(self, "ep", len[1] as usize),
            rng: [rng_words[0], rng_words[1], rng_words[2], rng_words[3]],
            received: counts[0],
            evicted: counts[1],
        });

        let sched = &self.words["schedule"];
        schedule.restore_counts(sched[0], sched[1]);
        let e = &self.words["rng/enc"];
        *enc_rng = StdRng::from_state([e[0], e[1], e[2], e[3]]);
        let t = &self.words["rng/train"];
        *train_rng = TensorRng::from_state([t[0], t[1], t[2], t[3]]);

        let prog = &self.words["progress"];
        let n = self.arrays["losses/total"].len();
        let losses = (0..n)
            .map(|i| LossReport {
                cd: self.arrays["losses/cd"][i],
                kl: self.arrays["losses/kl"][i],
                mse: self.arrays["losses/mse"][i],
                mmd_z: self.arrays["losses/mmd_z"][i],
                mmd_n: self.arrays["losses/mmd_n"][i],
                total: self.arrays["losses/total"][i],
            })
            .collect();
        LearnerProgress {
            windows: prog[0],
            samples: prog[1],
            owned_windows: self.words["owned_windows"].clone(),
            losses,
            param_hashes: self.words["param_hashes"].clone(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use as_nn::ddp::param_hash;
    use as_nn::model::ModelConfig;
    use as_nn::optim::AdamConfig;
    use as_nn::vae::VaeConfig;
    use as_replay::{BufferConfig, StallPolicy};
    use rand::RngCore;
    use rand::SeedableRng;

    fn tiny_cfg() -> ModelConfig {
        let mut cfg = ModelConfig::small();
        cfg.vae = VaeConfig {
            point_dim: 6,
            encoder_channels: vec![6, 8, 16],
            head_hidden: 16,
            latent: 12,
            decoder_base: 2,
            decoder_channels: vec![4, 6],
        };
        cfg.spectrum_dim = 6;
        cfg.inn_hidden = vec![12];
        cfg.inn_blocks = 2;
        cfg
    }

    fn sample(step: u64) -> Sample {
        Sample {
            points: (0..24).map(|i| 0.01 * (step * 7 + i) as f32).collect(),
            spectrum: (0..6).map(|i| 0.1 * (step + i) as f32).collect(),
            region: step as usize % 2,
            step,
        }
    }

    #[test]
    fn capture_restore_round_trips_bit_identically() {
        let mc = tiny_cfg();
        let mut model = ArtificialScientistModel::new(mc.clone(), 7);
        let mut opt = ModelOptimizer::new(AdamConfig::default(), 10.0);
        let mut buffer: TrainingBuffer<Sample> = TrainingBuffer::new(BufferConfig::default(), 11);
        let mut schedule = ReplaySchedule::new(4, StallPolicy::StallProducer);
        let mut enc_rng = StdRng::seed_from_u64(3);
        let mut train_rng = TensorRng::seeded(5);

        // Advance everything so the state is non-trivial.
        for s in 0..6 {
            buffer.push(sample(s));
        }
        schedule.restore_counts(6, 24);
        let _ = enc_rng.next_u64();
        let batch: Vec<Sample> = (0..2).map(sample).collect();
        let (pts, spec) = crate::encode::batch_to_tensors(&batch, &mc);
        model.zero_grad();
        let _ = model.accumulate_gradients(&pts, &spec, &mut train_rng);
        opt.step(&mut model);

        let progress = LearnerProgress {
            windows: 6,
            samples: 6,
            owned_windows: vec![1, 3, 5],
            losses: vec![LossReport {
                cd: 1.0,
                kl: 0.5,
                mse: 0.25,
                mmd_z: 0.125,
                mmd_n: 0.0625,
                total: 2.0,
            }],
            param_hashes: vec![0xDEAD, 0xBEEF],
        };
        let ckpt = LearnerCheckpoint::capture(
            &mut model, &opt, &buffer, &schedule, &enc_rng, &train_rng, &progress,
        );
        assert_eq!(ckpt.windows(), 6);
        let hash_at_capture = param_hash(&mut model);

        // Diverge: more training, more data, more RNG draws.
        for s in 6..9 {
            buffer.push(sample(s));
        }
        let _ = enc_rng.next_u64();
        model.zero_grad();
        let _ = model.accumulate_gradients(&pts, &spec, &mut train_rng);
        opt.step(&mut model);
        assert_ne!(param_hash(&mut model), hash_at_capture);

        // Restore and compare every restorable piece of state.
        let restored = ckpt.restore(
            &mut model,
            &mut opt,
            &mut buffer,
            &mut schedule,
            &mut enc_rng,
            &mut train_rng,
        );
        assert_eq!(restored, progress);
        assert_eq!(param_hash(&mut model), hash_at_capture);
        assert_eq!(schedule.counts(), (6, 24));

        // A recapture from restored state is bit-identical to the original.
        let again = LearnerCheckpoint::capture(
            &mut model, &opt, &buffer, &schedule, &enc_rng, &train_rng, &restored,
        );
        assert_eq!(again, ckpt);
    }
}
