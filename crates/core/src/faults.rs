//! Deterministic fault-injection plans for the chaos-hardened workflow.
//!
//! A [`FaultPlan`] is a seeded, serializable schedule of failures: message
//! chaos on the collective transport (drop/delay/duplicate — delivered by
//! [`as_cluster::comm::FaultInjector`] hooks inside the `Communicator`),
//! producer crashes and stream truncations (armed on the SST writers via
//! [`as_staging::engine::SstWriter::arm_truncate`]), and consumer-rank
//! kills (fired at window boundaries inside the consumer loops). The same
//! plan + the same seed produce a bit-identical fault sequence on every
//! run, which is what makes the recovery paths testable: a faulted run
//! can be compared against an unfaulted reference that merely *skips* the
//! windows the fault destroyed ([`FaultEvent::SkipWindows`]).
//!
//! The plan is inert by default ([`FaultPlan::default`]): every knob
//! zeroed, no events — the workflow then takes the exact legacy code
//! paths.

use as_cluster::comm::CommFaults;

/// What happens to a consumer rank when its kill event fires.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum KillMode {
    /// The rank restores its latest [`crate::checkpoint::LearnerCheckpoint`]
    /// and continues (windows processed since the checkpoint are lost).
    /// With more than one consumer rank the kill must land on a
    /// checkpoint boundary so the DDP collective schedule stays aligned.
    Restart,
    /// The rank marks itself dead on the collective world and panics with
    /// an [`InjectedFault`] payload; surviving ranks re-form a shrunk
    /// world and continue (graceful degradation).
    Die,
}

/// Which of the two SST streams a truncation targets.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StreamId {
    /// The particle phase-space stream.
    Particle,
    /// The radiation spectra stream.
    Radiation,
}

/// One scheduled fault.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultEvent {
    /// The producer group crashes at emission window `at_window`
    /// (0-based): both streams truncate there — windows `0..at_window`
    /// publish, nothing after. Consumers see a clean, synchronized EOF.
    ProducerCrash {
        /// First window that never publishes.
        at_window: u64,
    },
    /// Consumer `rank` is killed at the top of its window loop when its
    /// arrival counter reaches `at_window` (0-based count of windows
    /// taken off the stream so far).
    ConsumerKill {
        /// Learner rank to kill.
        rank: usize,
        /// Arrival count at which the kill fires.
        at_window: u64,
        /// Restart from checkpoint, or die and degrade the group.
        mode: KillMode,
    },
    /// Reference-run helper: the consumer reads and closes arrival
    /// windows `from..=to` without processing them, counting each as
    /// lost. This reproduces the exact data loss of a kill-restart run
    /// without any fault machinery, so the two runs' post-fault
    /// `param_hash` sequences can be compared bit for bit.
    SkipWindows {
        /// First skipped arrival (inclusive).
        from: u64,
        /// Last skipped arrival (inclusive).
        to: u64,
    },
    /// Truncate one stream at SST step `at_step` while the other keeps
    /// publishing until the producer notices — the out-of-sync EOF that
    /// exercises the orphaned-window machinery.
    TruncateStream {
        /// Which stream dies.
        stream: StreamId,
        /// First step that never publishes on it.
        at_step: u64,
    },
}

/// A complete, seeded fault schedule plus the detection/recovery budgets
/// the fault-tolerant collective layer ([`crate::ft::FtComm`]) runs with.
#[derive(Debug, Clone, PartialEq)]
pub struct FaultPlan {
    /// Seed for the message-chaos injector (same seed ⇒ bit-identical
    /// drop/delay/duplicate decisions).
    pub seed: u64,
    /// Per-operation receive budget (milliseconds) before one retry
    /// elapses.
    pub op_timeout_ms: u64,
    /// Poll granularity (milliseconds) of the tolerant receives.
    pub tick_ms: u64,
    /// Retries (each `op_timeout_ms` long) before a silent peer is
    /// declared dead.
    pub retry_budget: u32,
    /// Probability a message send is delayed by `4 × msg_delay_ms`
    /// (a "drop" with retransmit — nothing is ever lost).
    pub msg_drop_rate: f64,
    /// Probability a message send is delayed by `msg_delay_ms`.
    pub msg_delay_rate: f64,
    /// Base injected delay in milliseconds.
    pub msg_delay_ms: u64,
    /// Probability a message is duplicated (the receiver discards the
    /// flagged twin).
    pub msg_dup_rate: f64,
    /// Learner checkpoint cadence in windows (`0` = no checkpoints).
    pub checkpoint_every: u64,
    /// The scheduled fault events.
    pub events: Vec<FaultEvent>,
}

impl Default for FaultPlan {
    /// The inert plan: no chaos, no events, no checkpoints — the
    /// workflow runs its exact legacy code paths.
    fn default() -> Self {
        Self {
            seed: 0,
            op_timeout_ms: 50,
            tick_ms: 2,
            retry_budget: 5,
            msg_drop_rate: 0.0,
            msg_delay_rate: 0.0,
            msg_delay_ms: 1,
            msg_dup_rate: 0.0,
            checkpoint_every: 0,
            events: Vec::new(),
        }
    }
}

impl FaultPlan {
    /// True once anything in the plan deviates from the legacy run:
    /// message chaos, any event, or checkpointing. An active plan routes
    /// the workflow through the fault-tolerant consumer loops and arms
    /// the tolerant collective worlds.
    pub fn active(&self) -> bool {
        self.message_chaos() || !self.events.is_empty() || self.checkpoint_every > 0
    }

    /// True if any message-chaos rate is nonzero.
    pub fn message_chaos(&self) -> bool {
        self.msg_drop_rate > 0.0 || self.msg_delay_rate > 0.0 || self.msg_dup_rate > 0.0
    }

    /// The transport-level injector configuration this plan implies.
    pub fn comm_faults(&self) -> CommFaults {
        CommFaults {
            seed: self.seed,
            drop_rate: self.msg_drop_rate,
            delay_rate: self.msg_delay_rate,
            delay_ms: self.msg_delay_ms,
            dup_rate: self.msg_dup_rate,
        }
    }

    /// Producer-crash window, if one is scheduled (first match wins).
    pub fn producer_crash_window(&self) -> Option<u64> {
        self.events.iter().find_map(|e| match e {
            FaultEvent::ProducerCrash { at_window } => Some(*at_window),
            _ => None,
        })
    }

    /// Kill event for a given consumer rank, if scheduled.
    pub fn consumer_kill(&self, rank: usize) -> Option<(u64, KillMode)> {
        self.events.iter().find_map(|e| match e {
            FaultEvent::ConsumerKill {
                rank: r,
                at_window,
                mode,
            } if *r == rank => Some((*at_window, *mode)),
            _ => None,
        })
    }

    /// All scheduled skip ranges `(from, to)`, inclusive.
    pub fn skip_ranges(&self) -> Vec<(u64, u64)> {
        self.events
            .iter()
            .filter_map(|e| match e {
                FaultEvent::SkipWindows { from, to } => Some((*from, *to)),
                _ => None,
            })
            .collect()
    }

    /// Truncation step armed for one stream, if scheduled.
    pub fn stream_truncation(&self, stream: StreamId) -> Option<u64> {
        self.events.iter().find_map(|e| match e {
            FaultEvent::TruncateStream { stream: s, at_step } if *s == stream => Some(*at_step),
            _ => None,
        })
    }

    /// Total receive budget before a silent peer is declared dead.
    pub fn death_budget_ms(&self) -> u64 {
        self.op_timeout_ms * self.retry_budget as u64
    }

    /// Serialize to a line-based spec (round-trips through
    /// [`FaultPlan::from_spec`]).
    pub fn to_spec(&self) -> String {
        let mut s = String::new();
        s.push_str(&format!("seed={}\n", self.seed));
        s.push_str(&format!("op_timeout_ms={}\n", self.op_timeout_ms));
        s.push_str(&format!("tick_ms={}\n", self.tick_ms));
        s.push_str(&format!("retry_budget={}\n", self.retry_budget));
        s.push_str(&format!("msg_drop_rate={}\n", self.msg_drop_rate));
        s.push_str(&format!("msg_delay_rate={}\n", self.msg_delay_rate));
        s.push_str(&format!("msg_delay_ms={}\n", self.msg_delay_ms));
        s.push_str(&format!("msg_dup_rate={}\n", self.msg_dup_rate));
        s.push_str(&format!("checkpoint_every={}\n", self.checkpoint_every));
        for e in &self.events {
            match e {
                FaultEvent::ProducerCrash { at_window } => {
                    s.push_str(&format!("event=producer_crash at_window={at_window}\n"));
                }
                FaultEvent::ConsumerKill {
                    rank,
                    at_window,
                    mode,
                } => {
                    let m = match mode {
                        KillMode::Restart => "restart",
                        KillMode::Die => "die",
                    };
                    s.push_str(&format!(
                        "event=consumer_kill rank={rank} at_window={at_window} mode={m}\n"
                    ));
                }
                FaultEvent::SkipWindows { from, to } => {
                    s.push_str(&format!("event=skip_windows from={from} to={to}\n"));
                }
                FaultEvent::TruncateStream { stream, at_step } => {
                    let id = match stream {
                        StreamId::Particle => "particle",
                        StreamId::Radiation => "radiation",
                    };
                    s.push_str(&format!("event=truncate stream={id} at_step={at_step}\n"));
                }
            }
        }
        s
    }

    /// Parse a spec produced by [`FaultPlan::to_spec`].
    pub fn from_spec(spec: &str) -> Result<Self, String> {
        let mut plan = FaultPlan::default();
        for line in spec.lines() {
            let line = line.trim();
            if line.is_empty() || line.starts_with('#') {
                continue;
            }
            let (key, rest) = line
                .split_once('=')
                .ok_or_else(|| format!("malformed line: {line}"))?;
            match key {
                "seed" => plan.seed = parse(rest)?,
                "op_timeout_ms" => plan.op_timeout_ms = parse(rest)?,
                "tick_ms" => plan.tick_ms = parse(rest)?,
                "retry_budget" => plan.retry_budget = parse(rest)?,
                "msg_drop_rate" => plan.msg_drop_rate = parse(rest)?,
                "msg_delay_rate" => plan.msg_delay_rate = parse(rest)?,
                "msg_delay_ms" => plan.msg_delay_ms = parse(rest)?,
                "msg_dup_rate" => plan.msg_dup_rate = parse(rest)?,
                "checkpoint_every" => plan.checkpoint_every = parse(rest)?,
                "event" => plan.events.push(parse_event(rest)?),
                other => return Err(format!("unknown key: {other}")),
            }
        }
        Ok(plan)
    }
}

fn parse<T: std::str::FromStr>(s: &str) -> Result<T, String> {
    s.parse().map_err(|_| format!("bad value: {s}"))
}

fn parse_event(rest: &str) -> Result<FaultEvent, String> {
    let mut parts = rest.split_whitespace();
    let kind = parts.next().ok_or("empty event")?;
    let mut kv = std::collections::BTreeMap::new();
    for p in parts {
        let (k, v) = p.split_once('=').ok_or_else(|| format!("bad field: {p}"))?;
        kv.insert(k, v);
    }
    let get = |k: &str| -> Result<&str, String> {
        kv.get(k).copied().ok_or_else(|| format!("missing {k}"))
    };
    match kind {
        "producer_crash" => Ok(FaultEvent::ProducerCrash {
            at_window: parse(get("at_window")?)?,
        }),
        "consumer_kill" => Ok(FaultEvent::ConsumerKill {
            rank: parse(get("rank")?)?,
            at_window: parse(get("at_window")?)?,
            mode: match get("mode")? {
                "restart" => KillMode::Restart,
                "die" => KillMode::Die,
                other => return Err(format!("bad mode: {other}")),
            },
        }),
        "skip_windows" => Ok(FaultEvent::SkipWindows {
            from: parse(get("from")?)?,
            to: parse(get("to")?)?,
        }),
        "truncate" => Ok(FaultEvent::TruncateStream {
            stream: match get("stream")? {
                "particle" => StreamId::Particle,
                "radiation" => StreamId::Radiation,
                other => return Err(format!("bad stream: {other}")),
            },
            at_step: parse(get("at_step")?)?,
        }),
        other => Err(format!("unknown event: {other}")),
    }
}

/// Panic payload a [`KillMode::Die`] consumer rank unwinds with, so the
/// orchestrator can tell an injected death from a real bug when it
/// captures the join.
#[derive(Debug, Clone)]
pub struct InjectedFault {
    /// The rank that died.
    pub rank: usize,
    /// Its arrival counter at death.
    pub at_window: u64,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn inert_default_is_inactive() {
        let p = FaultPlan::default();
        assert!(!p.active());
        assert!(!p.message_chaos());
        assert!(p.comm_faults().is_noop());
        assert_eq!(p.producer_crash_window(), None);
        assert_eq!(p.consumer_kill(0), None);
        assert!(p.skip_ranges().is_empty());
    }

    #[test]
    fn spec_round_trips() {
        let plan = FaultPlan {
            seed: 42,
            op_timeout_ms: 40,
            tick_ms: 2,
            retry_budget: 5,
            msg_drop_rate: 0.1,
            msg_delay_rate: 0.25,
            msg_delay_ms: 3,
            msg_dup_rate: 0.05,
            checkpoint_every: 2,
            events: vec![
                FaultEvent::ProducerCrash { at_window: 3 },
                FaultEvent::ConsumerKill {
                    rank: 1,
                    at_window: 2,
                    mode: KillMode::Die,
                },
                FaultEvent::ConsumerKill {
                    rank: 0,
                    at_window: 4,
                    mode: KillMode::Restart,
                },
                FaultEvent::SkipWindows { from: 4, to: 5 },
                FaultEvent::TruncateStream {
                    stream: StreamId::Radiation,
                    at_step: 3,
                },
            ],
        };
        let spec = plan.to_spec();
        let back = FaultPlan::from_spec(&spec).expect("parses");
        assert_eq!(back, plan);
        assert!(plan.active());
        assert_eq!(plan.producer_crash_window(), Some(3));
        assert_eq!(plan.consumer_kill(1), Some((2, KillMode::Die)));
        assert_eq!(plan.consumer_kill(0), Some((4, KillMode::Restart)));
        assert_eq!(plan.consumer_kill(2), None);
        assert_eq!(plan.skip_ranges(), vec![(4, 5)]);
        assert_eq!(plan.stream_truncation(StreamId::Radiation), Some(3));
        assert_eq!(plan.stream_truncation(StreamId::Particle), None);
        assert_eq!(plan.death_budget_ms(), 200);
    }

    #[test]
    fn bad_specs_are_rejected() {
        assert!(FaultPlan::from_spec("nonsense").is_err());
        assert!(FaultPlan::from_spec("seed=abc").is_err());
        assert!(FaultPlan::from_spec("event=warp_core_breach").is_err());
        assert!(FaultPlan::from_spec("event=consumer_kill rank=0").is_err());
    }
}
