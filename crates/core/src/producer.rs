//! The producer: PIC simulation + in-situ radiation, streaming openPMD.
//!
//! Mirrors PIConGPU's role in the paper: per emission window it publishes
//! the full particle phase space on one stream and the windowed per-region
//! radiation amplitudes on a second stream ("two parallel data streams"),
//! then drops its local copies — the filesystem is never touched. If the
//! consumer falls behind, the bounded staging queue stalls the simulation
//! (measured and reported).

use crate::config::WorkflowConfig;
use as_openpmd::attribute::{UnitDimension, Value};
use as_openpmd::writer::OpenPmdWriter;
use as_pic::plugin::Plugin;
use as_pic::sim::Simulation;
use as_radiation::plugin::{RadiationPlugin, RegionMode};
use as_staging::engine::SstWriter;
use std::time::Instant;

/// Producer-side outcome.
#[derive(Debug, Clone)]
pub struct ProducerReport {
    /// PIC steps completed.
    pub steps: u64,
    /// Emission windows published.
    pub windows: u64,
    /// Total payload bytes published across both streams.
    pub bytes: u64,
    /// Wall seconds in the PIC step loop.
    pub sim_seconds: f64,
    /// Wall seconds blocked on staging back-pressure.
    pub stall_seconds: f64,
}

/// Run the producer to completion.
pub fn run_producer(
    cfg: &WorkflowConfig,
    particle_stream: SstWriter,
    radiation_stream: SstWriter,
) -> ProducerReport {
    let mut sim = cfg.khi.build(cfg.grid);
    let mut radiation = RadiationPlugin::new(
        cfg.detector.clone(),
        RegionMode::FlowRegions {
            shear_width: cfg.shear_width,
        },
        0,
    );
    let mut pw = OpenPmdWriter::new(particle_stream);
    let mut rw = OpenPmdWriter::new(radiation_stream);

    let mut report = ProducerReport {
        steps: 0,
        windows: 0,
        bytes: 0,
        sim_seconds: 0.0,
        stall_seconds: 0.0,
    };

    for step in 0..cfg.total_steps {
        let t0 = Instant::now();
        sim.step();
        radiation.after_step(&sim);
        report.sim_seconds += t0.elapsed().as_secs_f64();
        report.steps += 1;

        if (step + 1) % cfg.steps_per_sample == 0 {
            let t1 = Instant::now();
            emit_window(cfg, &sim, &mut radiation, &mut pw, &mut rw);
            report.stall_seconds += t1.elapsed().as_secs_f64();
            report.windows += 1;
        }
    }
    pw.close();
    rw.close();
    report.bytes = 0; // filled by caller from stream stats if needed
    report
}

/// Publish one emission window on both streams.
fn emit_window(
    cfg: &WorkflowConfig,
    sim: &Simulation,
    radiation: &mut RadiationPlugin,
    pw: &mut OpenPmdWriter,
    rw: &mut OpenPmdWriter,
) {
    let it = sim.step_index;
    let sp = &sim.species[0];
    let n = sp.len() as u64;

    // Particle stream: full phase space of the electrons.
    pw.begin_iteration(it, sim.time, sim.spec.dt);
    pw.set_attribute("beta", Value::F64(cfg.khi.beta));
    let u = as_pic::units::UnitSystem::paper();
    pw.write_particles(
        "e",
        "position",
        "x",
        UnitDimension::length(),
        u.skin_depth,
        n,
        0,
        &sp.x,
    );
    pw.write_particles(
        "e",
        "position",
        "y",
        UnitDimension::length(),
        u.skin_depth,
        n,
        0,
        &sp.y,
    );
    pw.write_particles(
        "e",
        "position",
        "z",
        UnitDimension::length(),
        u.skin_depth,
        n,
        0,
        &sp.z,
    );
    let p_si = as_pic::units::M_E * as_pic::units::C;
    pw.write_particles(
        "e",
        "momentum",
        "x",
        UnitDimension::momentum(),
        p_si,
        n,
        0,
        &sp.ux,
    );
    pw.write_particles(
        "e",
        "momentum",
        "y",
        UnitDimension::momentum(),
        p_si,
        n,
        0,
        &sp.uy,
    );
    pw.write_particles(
        "e",
        "momentum",
        "z",
        UnitDimension::momentum(),
        p_si,
        n,
        0,
        &sp.uz,
    );
    pw.write_particles(
        "e",
        "weighting",
        "w",
        UnitDimension::none(),
        1.0,
        n,
        0,
        &sp.w,
    );
    pw.end_iteration();

    // Radiation stream: windowed per-region intensity spectra
    // (dirs × freqs, flattened).
    rw.begin_iteration(it, sim.time, sim.spec.dt);
    let spectra = radiation.spectra();
    for (r, region) in spectra.iter().enumerate() {
        let mut flat: Vec<f64> = Vec::with_capacity(region.len() * cfg.detector.n_freqs());
        for dir in region {
            flat.extend_from_slice(&dir.intensity);
        }
        let name = format!("radiation/region{r}/intensity");
        let len = flat.len() as u64;
        rw.write_f32_array(
            &name,
            len,
            0,
            &flat.iter().map(|&v| v as f32).collect::<Vec<f32>>(),
        );
    }
    rw.set_attribute("n_regions", Value::I64(spectra.len() as i64));
    rw.set_attribute("window_steps", Value::I64(radiation.window_len() as i64));
    rw.end_iteration();
    let _ = radiation.take_window();
}

#[cfg(test)]
mod tests {
    use super::*;
    use as_staging::engine::{open_stream, StreamConfig};

    #[test]
    fn producer_publishes_expected_window_count() {
        let mut cfg = WorkflowConfig::small();
        cfg.total_steps = 8;
        cfg.steps_per_sample = 4;
        let (mut pw, mut pr) = open_stream(StreamConfig::default());
        let (mut rw, mut rr) = open_stream(StreamConfig::default());
        let (pw, rw) = (pw.remove(0), rw.remove(0));
        let cfg2 = cfg.clone();
        let producer = std::thread::spawn(move || run_producer(&cfg2, pw, rw));
        // Drain both streams.
        let mut p_reader = pr.remove(0);
        let mut r_reader = rr.remove(0);
        let mut windows = 0;
        loop {
            let ps = p_reader.begin_step();
            let rs = r_reader.begin_step();
            match (ps, rs) {
                (Some(mut a), Some(mut b)) => {
                    let x = a.get_f64("particles/e/position/x");
                    assert!(!x.is_empty());
                    let i0 = b.get_f32("radiation/region0/intensity");
                    assert_eq!(i0.len(), cfg.detector.n_freqs());
                    p_reader.end_step(a);
                    r_reader.end_step(b);
                    windows += 1;
                }
                (None, None) => break,
                _ => panic!("streams out of sync"),
            }
        }
        assert_eq!(windows, 2);
        let report = producer.join().unwrap();
        assert_eq!(report.steps, 8);
        assert_eq!(report.windows, 2);
        assert!(report.sim_seconds > 0.0);
    }
}
