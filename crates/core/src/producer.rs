//! The producer: PIC simulation + in-situ radiation, streaming openPMD.
//!
//! Mirrors PIConGPU's role in the paper: per emission window it publishes
//! the full particle phase space on one stream and the windowed per-region
//! radiation amplitudes on a second stream ("two parallel data streams"),
//! then drops its local copies — the filesystem is never touched. If the
//! consumer falls behind, the bounded staging queue stalls the simulation
//! (measured and reported as [`ProducerReport::stall_seconds`] — only the
//! time actually blocked on the full queue, not the emit wall time).
//!
//! Two drivers share the emission path:
//! - [`run_producer`]: the original single-domain producer (one rank owns
//!   the whole box) — the exact legacy 1×1 behaviour;
//! - [`run_sharded_producer`]: one rank of an M-way slab decomposition
//!   ([`as_pic::domain::DistributedSim`]). Each rank publishes its local
//!   particles as one block of the global multi-writer SST step (offsets
//!   allgathered per window, since migration moves particles between
//!   slabs), and the per-region radiation amplitudes are merged across
//!   ranks by superposition (allreduce) before rank 0 emits the spectra.

use crate::config::WorkflowConfig;
use crate::faults::StreamId;
use as_cluster::collective::Collective;
use as_openpmd::attribute::{UnitDimension, Value};
use as_openpmd::writer::OpenPmdWriter;
use as_pic::domain::DistributedSim;
use as_pic::plugin::Plugin;
use as_pic::sim::Simulation;
use as_radiation::plugin::{RadiationPlugin, RegionMode};
use as_staging::engine::SstWriter;
use std::time::Instant;

/// Producer-side outcome (one rank).
#[derive(Debug, Clone)]
pub struct ProducerReport {
    /// PIC steps completed (global step count, not summed over ranks).
    pub steps: u64,
    /// Emission windows published.
    pub windows: u64,
    /// Payload bytes this rank published across both streams.
    pub bytes: u64,
    /// Wall seconds in the PIC step loop.
    pub sim_seconds: f64,
    /// Wall seconds in window emission (serialisation + publish + stall).
    pub emit_seconds: f64,
    /// Wall seconds blocked on staging back-pressure (the bounded SST
    /// queue at its limit) — a strict subset of `emit_seconds`.
    pub stall_seconds: f64,
    /// Inter-rank payload bytes the producer group's collective backend
    /// moved (world-wide counter observed at this rank's exit; halo
    /// exchanges, particle migration, offset allgathers, radiation
    /// merges). Zero for the single-domain producer, which has no peers.
    pub comm_bytes: u64,
    /// Modelled fabric seconds charged by the collective backend
    /// (world-wide; nonzero only under `CommBackend::NetSim`).
    pub comm_model_seconds: f64,
    /// Point-to-point messages the producer group's collectives sent
    /// (world-wide counter observed at this rank's exit) — the α-term
    /// driver the log-depth schedules shrink per rank.
    pub comm_messages: u64,
    /// Wire bytes this rank actually put on the staging data plane —
    /// equals [`ProducerReport::bytes`] under `WireCodec::None`, smaller
    /// under a compressing codec.
    pub staging_wire_bytes: u64,
    /// Modelled data-plane seconds the configured
    /// [`as_staging::dataplane::DataPlane`] charged this rank's window
    /// publishes (backend-independent pure model time; under the netsim
    /// backend the same charge also accrues on the collective world's
    /// data-plane clock).
    pub staging_model_seconds: f64,
}

impl ProducerReport {
    pub(crate) fn zero() -> Self {
        Self {
            steps: 0,
            windows: 0,
            bytes: 0,
            sim_seconds: 0.0,
            emit_seconds: 0.0,
            stall_seconds: 0.0,
            comm_bytes: 0,
            comm_model_seconds: 0.0,
            comm_messages: 0,
            staging_wire_bytes: 0,
            staging_model_seconds: 0.0,
        }
    }

    /// Fraction of producer wall time (sim + emit) lost to back-pressure.
    pub fn stall_fraction(&self) -> f64 {
        let wall = self.sim_seconds + self.emit_seconds;
        if wall > 0.0 {
            self.stall_seconds / wall
        } else {
            0.0
        }
    }
}

fn flow_regions(cfg: &WorkflowConfig) -> RadiationPlugin {
    RadiationPlugin::new(
        cfg.detector.clone(),
        RegionMode::FlowRegions {
            shear_width: cfg.shear_width,
        },
        0,
    )
}

/// Finish a rank's report from the writer-side stream stats: real
/// published bytes and real queue-blocked time.
fn finish_report(report: &mut ProducerReport, pw: &OpenPmdWriter, rw: &OpenPmdWriter) {
    report.bytes = pw.bytes_published() + rw.bytes_published();
    report.stall_seconds = pw.stall_seconds() + rw.stall_seconds();
    report.staging_wire_bytes = pw.wire_bytes_published() + rw.wire_bytes_published();
    report.staging_model_seconds = pw.model_seconds() + rw.model_seconds();
}

/// Arm the plan's producer-side faults on the stream writers. A
/// [`crate::faults::FaultEvent::ProducerCrash`] truncates *both* streams
/// at the same window (a clean, synchronized EOF); a
/// [`crate::faults::FaultEvent::TruncateStream`] truncates one stream
/// only (the out-of-sync EOF that produces orphaned windows on the
/// consumer side). Windows and SST steps coincide: the producers emit
/// exactly one stream step per window, in order.
fn arm_faults(cfg: &WorkflowConfig, pw: &mut OpenPmdWriter, rw: &mut OpenPmdWriter) {
    if let Some(w) = cfg.faults.producer_crash_window() {
        pw.arm_truncate(w);
        rw.arm_truncate(w);
    }
    if let Some(s) = cfg.faults.stream_truncation(StreamId::Particle) {
        pw.arm_truncate(s);
    }
    if let Some(s) = cfg.faults.stream_truncation(StreamId::Radiation) {
        rw.arm_truncate(s);
    }
}

/// Run the single-domain producer to completion (the legacy 1×1 path).
pub fn run_producer(
    cfg: &WorkflowConfig,
    particle_stream: SstWriter,
    radiation_stream: SstWriter,
) -> ProducerReport {
    let mut sim = cfg.khi.build(cfg.grid);
    let mut radiation = flow_regions(cfg);
    let mut pw = OpenPmdWriter::new(particle_stream);
    let mut rw = OpenPmdWriter::new(radiation_stream);
    arm_faults(cfg, &mut pw, &mut rw);

    let mut report = ProducerReport::zero();

    for step in 0..cfg.total_steps {
        let t0 = Instant::now();
        sim.step();
        radiation.after_step(&sim);
        report.sim_seconds += t0.elapsed().as_secs_f64();
        report.steps += 1;

        if (step + 1) % cfg.steps_per_sample == 0 {
            let t1 = Instant::now();
            let n = sim.species[0].len() as u64;
            emit_window(cfg, &sim, &mut radiation, &mut pw, &mut rw, n, 0);
            report.emit_seconds += t1.elapsed().as_secs_f64();
            // An armed truncation firing inside the emit means this
            // window (on at least one stream) never published: the
            // producer "crashed" here. Stop emitting.
            if pw.is_truncated() || rw.is_truncated() {
                break;
            }
            report.windows += 1;
        }
    }
    pw.close();
    rw.close();
    finish_report(&mut report, &pw, &rw);
    report
}

/// Run one rank of an M-way sharded producer to completion.
///
/// `comm` spans the producer ranks (world size M); the global KHI box is
/// slab-decomposed along x via [`DistributedSim`]. Every rank contributes
/// its particle shard to the shared multi-writer particle stream; the
/// radiation stream carries the rank-merged spectra, written by rank 0.
pub fn run_sharded_producer<C: Collective>(
    cfg: &WorkflowConfig,
    comm: C,
    particle_stream: SstWriter,
    radiation_stream: SstWriter,
) -> ProducerReport {
    let mut d = DistributedSim::new(comm, cfg.grid, cfg.khi.all_species(&cfg.grid));
    let mut radiation = flow_regions(cfg);
    let mut pw = OpenPmdWriter::new(particle_stream);
    let mut rw = OpenPmdWriter::new(radiation_stream);
    arm_faults(cfg, &mut pw, &mut rw);

    let mut report = ProducerReport::zero();
    // Snapshots of the writer-side staging stats, so each window's wire
    // bytes and modelled publish time can be charged to the collective
    // world's data-plane clock as a per-window delta.
    let (mut dp_wire, mut dp_secs) = (0u64, 0.0f64);

    for step in 0..cfg.total_steps {
        let t0 = Instant::now();
        d.step();
        // The final half-B update leaves ghosts one half-step stale; the
        // radiation gather needs fresh halos.
        d.refresh_ghosts();
        radiation.accumulate_for(&d.local, d.offset_cells as f64);
        report.sim_seconds += t0.elapsed().as_secs_f64();
        report.steps += 1;

        if (step + 1) % cfg.steps_per_sample == 0 {
            let t1 = Instant::now();
            // Particle ownership moves between slabs via migration, so
            // the block layout of the global array is re-agreed on every
            // window: rank r writes [Σ counts[..r], Σ counts[..r+1]).
            let local_n = d.local.species[0].len() as u64;
            let counts: Vec<u64> = d.comm().allgather(local_n);
            let offset: u64 = counts[..d.rank()].iter().sum();
            let global_n: u64 = counts.iter().sum();
            // Radiation superposition: amplitudes (not intensities) sum
            // linearly across ranks; after the allreduce every rank holds
            // the global window and rank 0 emits it.
            for acc in radiation.accumulators_mut() {
                d.comm().allreduce_sum_f64(acc.amplitudes_mut());
            }
            emit_window(
                cfg,
                &d.local,
                &mut radiation,
                &mut pw,
                &mut rw,
                global_n,
                offset,
            );
            // Route this window's staging traffic through the collective
            // backend's data-plane accounting: the netsim backend folds
            // the modelled publish time into the run's data-plane
            // critical path (and sleeps its time_scale share); the
            // in-process backend ignores the charge, staying bit-exact.
            let wire = pw.wire_bytes_published() + rw.wire_bytes_published();
            let secs = pw.model_seconds() + rw.model_seconds();
            d.comm().account_dataplane(wire - dp_wire, secs - dp_secs);
            (dp_wire, dp_secs) = (wire, secs);
            report.emit_seconds += t1.elapsed().as_secs_f64();
            // Every rank armed the same truncation step, so all shards
            // take this break on the same window — the group "crashes"
            // together and the DistributedSim collectives stay aligned.
            if pw.is_truncated() || rw.is_truncated() {
                break;
            }
            report.windows += 1;
        }
    }
    pw.close();
    rw.close();
    finish_report(&mut report, &pw, &rw);
    report.comm_bytes = d.comm().world_bytes_sent();
    report.comm_model_seconds = d.comm().modelled_comm_seconds();
    report.comm_messages = d.comm().world_messages_sent();
    report
}

/// Publish one emission window on both streams. `global_n` and `offset`
/// describe this rank's block of the global particle array (the whole
/// array for the single-domain producer); the radiation spectra are
/// written by writer rank 0 only, from the (already rank-merged)
/// accumulators.
fn emit_window(
    cfg: &WorkflowConfig,
    sim: &Simulation,
    radiation: &mut RadiationPlugin,
    pw: &mut OpenPmdWriter,
    rw: &mut OpenPmdWriter,
    global_n: u64,
    offset: u64,
) {
    let it = sim.step_index;
    let sp = &sim.species[0];
    let n = global_n;

    // Particle stream: full phase space of the electrons.
    pw.begin_iteration(it, sim.time, sim.spec.dt);
    pw.set_attribute("beta", Value::F64(cfg.khi.beta));
    let u = as_pic::units::UnitSystem::paper();
    pw.write_particles(
        "e",
        "position",
        "x",
        UnitDimension::length(),
        u.skin_depth,
        n,
        offset,
        &sp.x,
    );
    pw.write_particles(
        "e",
        "position",
        "y",
        UnitDimension::length(),
        u.skin_depth,
        n,
        offset,
        &sp.y,
    );
    pw.write_particles(
        "e",
        "position",
        "z",
        UnitDimension::length(),
        u.skin_depth,
        n,
        offset,
        &sp.z,
    );
    let p_si = as_pic::units::M_E * as_pic::units::C;
    pw.write_particles(
        "e",
        "momentum",
        "x",
        UnitDimension::momentum(),
        p_si,
        n,
        offset,
        &sp.ux,
    );
    pw.write_particles(
        "e",
        "momentum",
        "y",
        UnitDimension::momentum(),
        p_si,
        n,
        offset,
        &sp.uy,
    );
    pw.write_particles(
        "e",
        "momentum",
        "z",
        UnitDimension::momentum(),
        p_si,
        n,
        offset,
        &sp.uz,
    );
    pw.write_particles(
        "e",
        "weighting",
        "w",
        UnitDimension::none(),
        1.0,
        n,
        offset,
        &sp.w,
    );
    pw.end_iteration();

    // Radiation stream: windowed per-region intensity spectra
    // (dirs × freqs, flattened). Writer rank 0 holds the rank-merged
    // window and publishes it whole; other ranks just join the collective
    // step commit.
    rw.begin_iteration(it, sim.time, sim.spec.dt);
    if rw.rank() == 0 {
        let spectra = radiation.spectra();
        for (r, region) in spectra.iter().enumerate() {
            let mut flat: Vec<f64> = Vec::with_capacity(region.len() * cfg.detector.n_freqs());
            for dir in region {
                flat.extend_from_slice(&dir.intensity);
            }
            let name = format!("radiation/region{r}/intensity");
            let len = flat.len() as u64;
            rw.write_f32_array(
                &name,
                len,
                0,
                &flat.iter().map(|&v| v as f32).collect::<Vec<f32>>(),
            );
        }
        rw.set_attribute("n_regions", Value::I64(spectra.len() as i64));
        rw.set_attribute("window_steps", Value::I64(radiation.window_len() as i64));
    }
    rw.end_iteration();
    let _ = radiation.take_window();
}

#[cfg(test)]
mod tests {
    use super::*;
    use as_staging::engine::{open_stream, StreamConfig};

    #[test]
    fn producer_publishes_expected_window_count() {
        let mut cfg = WorkflowConfig::small();
        cfg.total_steps = 8;
        cfg.steps_per_sample = 4;
        let (mut pw, mut pr) = open_stream(StreamConfig::default());
        let (mut rw, mut rr) = open_stream(StreamConfig::default());
        let (pw, rw) = (pw.remove(0), rw.remove(0));
        let cfg2 = cfg.clone();
        let producer = std::thread::spawn(move || run_producer(&cfg2, pw, rw));
        // Drain both streams.
        let mut p_reader = pr.remove(0);
        let mut r_reader = rr.remove(0);
        let mut windows = 0;
        loop {
            let ps = p_reader.begin_step();
            let rs = r_reader.begin_step();
            match (ps, rs) {
                (Some(mut a), Some(mut b)) => {
                    let x = a.get_f64("particles/e/position/x");
                    assert!(!x.is_empty());
                    let i0 = b.get_f32("radiation/region0/intensity");
                    assert_eq!(i0.len(), cfg.detector.n_freqs());
                    p_reader.end_step(a);
                    r_reader.end_step(b);
                    windows += 1;
                }
                (None, None) => break,
                _ => panic!("streams out of sync"),
            }
        }
        assert_eq!(windows, 2);
        let report = producer.join().unwrap();
        assert_eq!(report.steps, 8);
        assert_eq!(report.windows, 2);
        assert!(report.sim_seconds > 0.0);
        // 7 particle arrays × N × 8 B per window, plus the radiation
        // stream: the report must carry the real published volume.
        let particles = (cfg.grid.cells() * cfg.khi.ppc) as u64;
        assert!(report.bytes >= report.windows * particles * 7 * 8);
        assert!(report.stall_seconds <= report.emit_seconds);
    }

    #[test]
    fn sharded_producer_assembles_the_global_particle_array() {
        use as_cluster::comm::CommWorld;
        let mut cfg = WorkflowConfig::small();
        cfg.total_steps = 8;
        cfg.steps_per_sample = 4;
        cfg.producers = 2;
        let stream_cfg = StreamConfig {
            writers: 2,
            ..StreamConfig::default()
        };
        let (pw, mut pr) = open_stream(stream_cfg);
        let (rw, mut rr) = open_stream(stream_cfg);
        let endpoints = CommWorld::new(2).into_endpoints();
        let handles: Vec<_> = endpoints
            .into_iter()
            .zip(pw.into_iter().zip(rw))
            .map(|(comm, (p, r))| {
                let cfg = cfg.clone();
                std::thread::spawn(move || run_sharded_producer(&cfg, comm, p, r))
            })
            .collect();
        let mut p_reader = pr.remove(0);
        let mut r_reader = rr.remove(0);
        let electrons = cfg.grid.cells() * cfg.khi.ppc;
        let mut windows = 0;
        loop {
            match (p_reader.begin_step(), r_reader.begin_step()) {
                (Some(mut a), Some(mut b)) => {
                    // Blocks from both writer ranks tile the full array.
                    let x = a.get_f64("particles/e/position/x");
                    assert_eq!(x.len(), electrons, "shards must tile the box");
                    let i0 = b.get_f32("radiation/region0/intensity");
                    assert_eq!(i0.len(), cfg.detector.n_freqs());
                    p_reader.end_step(a);
                    r_reader.end_step(b);
                    windows += 1;
                }
                (None, None) => break,
                _ => panic!("streams out of sync"),
            }
        }
        assert_eq!(windows, 2);
        for h in handles {
            let report = h.join().unwrap();
            assert_eq!(report.steps, 8);
            assert_eq!(report.windows, 2);
            assert!(report.bytes > 0, "every shard publishes payload");
        }
    }
}
