//! Workflow configuration.

use crate::encode::EncodeConfig;
use as_nn::model::ModelConfig;
use as_nn::optim::AdamConfig;
use as_pic::grid::GridSpec;
use as_pic::khi::KhiSetup;
use as_radiation::detector::Detector;
use as_replay::buffer::BufferConfig;
use as_staging::dataplane::DataPlane;

/// Where producer and consumer ranks live relative to each other
/// (Fig. 3(c)). Intra-node shares every node between 4 simulation GCDs
/// and 4 training GCDs so data exchange "mostly does not need to leave
/// the node"; inter-node gives whole nodes to one side.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Placement {
    /// Simulation and MLapp share each node (the paper's choice).
    IntraNode,
    /// Disjoint node sets (easier to schedule in Slurm, more fabric
    /// traffic).
    InterNode,
}

impl Placement {
    /// Fraction of the stream that must cross the network fabric.
    pub fn fabric_fraction(&self) -> f64 {
        match self {
            // Reader loads "are configured such that data is shared within
            // node boundaries" — only halo leftovers leave the node.
            Placement::IntraNode => 0.1,
            Placement::InterNode => 1.0,
        }
    }
}

/// Everything needed to run the end-to-end workflow.
#[derive(Debug, Clone)]
pub struct WorkflowConfig {
    /// PIC grid.
    pub grid: GridSpec,
    /// KHI scenario parameters.
    pub khi: KhiSetup,
    /// Radiation detector geometry.
    pub detector: Detector,
    /// Vortex band half-width for region classification.
    pub shear_width: f64,
    /// PIC steps between emitted training samples (radiation accumulates
    /// over the window).
    pub steps_per_sample: usize,
    /// Total PIC steps to run.
    pub total_steps: usize,
    /// ML model configuration.
    pub model: ModelConfig,
    /// Encoding (normalisation) parameters.
    pub encode: EncodeConfig,
    /// Training buffer configuration.
    pub buffer: BufferConfig,
    /// Training iterations per streamed sample (n_rep).
    pub n_rep: u32,
    /// Adam configuration for the INN group.
    pub adam: AdamConfig,
    /// VAE learning-rate multiplier m_VAE.
    pub m_vae: f32,
    /// Producer/consumer placement.
    pub placement: Placement,
    /// Staging data plane.
    pub plane: DataPlane,
    /// Staging queue limit (in-flight steps before the producer stalls).
    pub queue_limit: usize,
    /// Simulation (writer) ranks: the KHI box is slab-decomposed along x
    /// into this many shards, one producer thread each. Must divide
    /// `grid.nx`. `1` keeps the original single-domain producer path.
    pub producers: usize,
    /// Learner (reader) ranks: each consumes its round-robin share of the
    /// streamed windows and trains data-parallel, averaging gradients
    /// every iteration. `1` keeps the original single-consumer path.
    pub consumers: usize,
    /// Master seed.
    pub seed: u64,
}

impl WorkflowConfig {
    /// A CPU-scale configuration that exercises the full pipeline in
    /// seconds (tests, quickstart example).
    pub fn small() -> Self {
        let grid = GridSpec::cubic(12, 24, 4, 0.5, 0.5);
        let khi = KhiSetup {
            beta: 0.2,
            ppc: 4,
            ..KhiSetup::default()
        };
        let model = ModelConfig::small();
        let detector = Detector::along_x(0.2, 20.0, model.spectrum_dim);
        Self {
            grid,
            khi,
            detector,
            shear_width: 0.06,
            steps_per_sample: 4,
            total_steps: 40,
            encode: EncodeConfig::default(),
            buffer: BufferConfig::default(),
            n_rep: 4,
            adam: AdamConfig {
                lr: 5e-4,
                weight_decay: 0.0,
                ..AdamConfig::default()
            },
            m_vae: 4.0,
            placement: Placement::IntraNode,
            plane: DataPlane::Mpi,
            queue_limit: 2,
            producers: 1,
            consumers: 1,
            seed: 1,
            model,
        }
    }

    /// The paper-fidelity configuration (Frontier-scale; listed for
    /// completeness and used by the scaling models — do not run on a
    /// laptop).
    pub fn paper() -> Self {
        let mut cfg = Self::small();
        cfg.grid = KhiSetup::paper_grid();
        cfg.khi = KhiSetup::default();
        cfg.model = ModelConfig::paper();
        cfg.detector = Detector::along_x(0.1, 100.0, cfg.model.spectrum_dim);
        cfg.encode.sample_points = 30_000;
        cfg.n_rep = 48;
        cfg.adam = AdamConfig::default();
        cfg.total_steps = 2000;
        cfg
    }

    /// Samples emitted per streamed window (one per flow region).
    pub fn samples_per_window(&self) -> usize {
        3
    }

    /// Panics unless the M×K streaming topology is consistent: at least
    /// one rank on each side and an even slab split of the grid.
    pub fn validate_topology(&self) {
        assert!(
            self.producers >= 1 && self.consumers >= 1,
            "topology needs at least one producer and one consumer"
        );
        assert_eq!(
            self.grid.nx % self.producers,
            0,
            "grid.nx = {} must divide evenly into {} producer slabs",
            self.grid.nx,
            self.producers
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn small_config_is_consistent() {
        let c = WorkflowConfig::small();
        c.grid.validate();
        c.validate_topology();
        assert_eq!(c.detector.n_freqs(), c.model.spectrum_dim);
        assert!(c.n_rep >= 1);
        assert_eq!((c.producers, c.consumers), (1, 1), "legacy 1×1 default");
    }

    #[test]
    fn small_grid_admits_the_benchmark_topologies() {
        // The fig_workflow_scaling sweep needs 1, 2 and 4 producer slabs.
        for m in [1usize, 2, 4] {
            let mut c = WorkflowConfig::small();
            c.producers = m;
            c.consumers = 2;
            c.validate_topology();
        }
    }

    #[test]
    #[should_panic(expected = "divide evenly")]
    fn uneven_slab_split_is_rejected() {
        let mut c = WorkflowConfig::small();
        c.producers = 5; // 12 cells across 5 slabs
        c.validate_topology();
    }

    #[test]
    fn paper_config_matches_headline_numbers() {
        let c = WorkflowConfig::paper();
        assert_eq!((c.grid.nx, c.grid.ny, c.grid.nz), (192, 256, 12));
        assert_eq!(c.encode.sample_points, 30_000);
        assert_eq!(c.model.vae.latent, 544);
        assert_eq!(c.n_rep, 48);
    }

    #[test]
    fn placement_fabric_fractions() {
        assert!(Placement::IntraNode.fabric_fraction() < Placement::InterNode.fabric_fraction());
    }
}
