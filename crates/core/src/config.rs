//! Workflow configuration.
//!
//! Besides the physics/topology knobs, this module owns the two levers
//! of the pluggable communication layer
//! ([`as_cluster::collective::Collective`]):
//!
//! - [`CommBackend`] picks the transport every rank group (producer
//!   slabs, DDP learners) is wired with — the in-process channels or the
//!   netsim-delayed fabric model;
//! - [`WorkflowConfig::overlap_grad_sync`] switches the DDP consumers
//!   from the blocking bucketed gradient all-reduce to the non-blocking
//!   comm-worker mode ([`as_nn::ddp::OverlappedGradSync`]), which is
//!   bit-identical but overlaps reduction with main-thread work.

use crate::encode::EncodeConfig;
use crate::faults::FaultPlan;
use as_cluster::algos::CollectiveAlgo;
use as_cluster::machine::{MachineSpec, FRONTIER, SUMMIT};
use as_nn::model::ModelConfig;
use as_nn::optim::AdamConfig;
use as_pic::grid::GridSpec;
use as_pic::khi::KhiSetup;
use as_radiation::detector::Detector;
use as_replay::buffer::BufferConfig;
use as_staging::codec::WireCodec;
use as_staging::dataplane::DataPlane;

/// Where producer and consumer ranks live relative to each other
/// (Fig. 3(c)). Intra-node shares every node between 4 simulation GCDs
/// and 4 training GCDs so data exchange "mostly does not need to leave
/// the node"; inter-node gives whole nodes to one side.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Placement {
    /// Simulation and MLapp share each node (the paper's choice).
    IntraNode,
    /// Disjoint node sets (easier to schedule in Slurm, more fabric
    /// traffic).
    InterNode,
}

impl Placement {
    /// Fraction of the stream that must cross the network fabric.
    pub fn fabric_fraction(&self) -> f64 {
        match self {
            // Reader loads "are configured such that data is shared within
            // node boundaries" — only halo leftovers leave the node.
            Placement::IntraNode => 0.1,
            Placement::InterNode => 1.0,
        }
    }
}

/// How consumer ranks pace themselves against the stream — the policy
/// lever Kelling et al. (arXiv:2501.03383) use to keep the simulation
/// unblocked: train on the freshest step, drop the rest.
///
/// The choice trades training coverage for producer stall:
/// - [`ConsumerPolicy::BlockingEveryStep`] consumes every window in
///   order. If training is slower than the simulation, the bounded SST
///   queue fills and the producer stalls (the §V-A telemetry).
/// - [`ConsumerPolicy::DropSteps`] always reads the **newest** published
///   window and closes older pending ones unread (they are counted in
///   `ConsumerReport::dropped_windows`). The producer can stall only
///   while the consumer is busy inside a single window, because every
///   skip-ahead read frees the whole backlog at once — stall is bounded
///   by the queue depth instead of growing with the training debt.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ConsumerPolicy {
    /// Consume every streamed window in order (the legacy behaviour);
    /// back-pressure is the flow control.
    BlockingEveryStep,
    /// Jump to the newest published window, dropping older ones.
    /// `max_queue` is the staging queue depth used for the run (it
    /// replaces [`WorkflowConfig::queue_limit`]): the producer keeps at
    /// most `max_queue` windows in flight and never waits for a consumer
    /// that is more than one window behind.
    DropSteps {
        /// In-flight window bound for the staging streams.
        max_queue: usize,
        /// Adaptive drop threshold: skip ahead only when at least this
        /// many unseen windows are pending on the stream; with a
        /// shallower backlog, consume the next window in order. `0` (and
        /// `1`) always jump to the freshest window — the classic
        /// behaviour and the default of [`ConsumerPolicy::drop_steps`].
        min_queue: usize,
    },
}

impl ConsumerPolicy {
    /// The classic drop-to-freshest policy: skip ahead whenever anything
    /// newer is pending (`min_queue: 0`).
    pub fn drop_steps(max_queue: usize) -> Self {
        ConsumerPolicy::DropSteps {
            max_queue,
            min_queue: 0,
        }
    }

    /// The staging queue limit this policy implies, given the config's
    /// blocking-mode `queue_limit`.
    pub fn effective_queue_limit(&self, blocking_limit: usize) -> usize {
        match self {
            ConsumerPolicy::BlockingEveryStep => blocking_limit,
            ConsumerPolicy::DropSteps { max_queue, .. } => *max_queue,
        }
    }

    /// True for the skip-ahead policy.
    pub fn drops_steps(&self) -> bool {
        matches!(self, ConsumerPolicy::DropSteps { .. })
    }

    /// Short label for benchmark output.
    pub fn label(&self) -> &'static str {
        match self {
            ConsumerPolicy::BlockingEveryStep => "blocking",
            ConsumerPolicy::DropSteps { .. } => "drop_steps",
        }
    }
}

/// Which [`as_cluster::collective::Collective`] backend carries every
/// inter-rank exchange of the run (producer halo/migration/merge traffic
/// and consumer DDP traffic alike).
///
/// Concrete endpoints are constructed only by
/// [`crate::workflow::run_workflow`] from this knob; all rank code is
/// generic over the trait.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum CommBackend {
    /// The in-process thread/channel transport
    /// ([`as_cluster::collective::ChannelComm`]) — zero modelled cost,
    /// bit-exact with the historical direct-communicator paths.
    InProcess,
    /// The same transport wrapped in the netsim fabric model
    /// ([`as_cluster::collective::SimNetComm`]): every operation is
    /// charged the machine's latency/fair-share-bandwidth cost (derived
    /// from the [`as_cluster::netsim`] max-min allocation over the
    /// machine's NIC + bisection topology), and `time_scale` of that
    /// cost is injected as real wall time. Numerics are bit-identical
    /// to [`CommBackend::InProcess`].
    NetSim {
        /// The modelled machine (e.g. [`FRONTIER`], [`SUMMIT`]).
        machine: MachineSpec,
        /// Fraction of the modelled delay injected as wall time
        /// (`1.0` = full modelled delays, `0.0` = record-only).
        time_scale: f64,
    },
}

impl CommBackend {
    /// The paper's primary fabric, with modelled delays injected at
    /// full scale.
    pub fn netsim_frontier() -> Self {
        CommBackend::NetSim {
            machine: FRONTIER,
            time_scale: 1.0,
        }
    }

    /// The paper's 2019 baseline fabric.
    pub fn netsim_summit() -> Self {
        CommBackend::NetSim {
            machine: SUMMIT,
            time_scale: 1.0,
        }
    }

    /// Short label for benchmark output, e.g. `in_process` or
    /// `netsim-frontier`.
    pub fn label(&self) -> String {
        match self {
            CommBackend::InProcess => "in_process".to_string(),
            CommBackend::NetSim { machine, .. } => {
                format!("netsim-{}", machine.name.to_lowercase())
            }
        }
    }
}

/// Knobs of the surrogate serving tier ([`WorkflowConfig::serving`]):
/// how often the learner publishes [`crate::snapshot::ModelSnapshot`]s
/// and how the inference engine (`as-serve`) batches and caches queries.
///
/// Publication is keyed on the **training-iteration counter**, which is
/// identical on every DDP rank — so all ranks agree on when a snapshot
/// is due and the collective schedule never diverges. Only the learner
/// root captures and publishes; under the netsim backend the snapshot
/// payload is priced along the broadcast schedule like all other
/// traffic.
#[derive(Debug, Clone, PartialEq)]
pub struct ServingConfig {
    /// Publish a snapshot every this many training iterations.
    pub publish_every: u64,
    /// Micro-batching: serve at most this many queries per forward pass.
    pub max_batch: usize,
    /// Micro-batching: after the first query of a batch arrives, wait at
    /// most this long (microseconds) for more before running the pass.
    pub max_wait_us: u64,
    /// Bounded request queue: submitters wait while this many queries
    /// are already in flight (closed-loop back-pressure, like the SST
    /// queue on the training side).
    pub queue_bound: usize,
    /// LRU posterior-cache capacity (entries); `0` disables caching.
    pub cache_capacity: usize,
    /// Normal residual draws per query — the posterior sample count of
    /// each inversion ([`as_nn::model::ArtificialScientistModel`]'s
    /// `invert_radiation` semantics, seeded per `(spectrum, version)` so
    /// responses are a pure function of the snapshot version).
    pub posterior_samples: usize,
}

impl Default for ServingConfig {
    fn default() -> Self {
        Self {
            publish_every: 8,
            max_batch: 8,
            max_wait_us: 200,
            queue_bound: 256,
            cache_capacity: 64,
            posterior_samples: 4,
        }
    }
}

/// Everything needed to run the end-to-end workflow.
#[derive(Debug, Clone)]
pub struct WorkflowConfig {
    /// PIC grid.
    pub grid: GridSpec,
    /// KHI scenario parameters.
    pub khi: KhiSetup,
    /// Radiation detector geometry.
    pub detector: Detector,
    /// Vortex band half-width for region classification.
    pub shear_width: f64,
    /// PIC steps between emitted training samples (radiation accumulates
    /// over the window).
    pub steps_per_sample: usize,
    /// Total PIC steps to run.
    pub total_steps: usize,
    /// ML model configuration.
    pub model: ModelConfig,
    /// Encoding (normalisation) parameters.
    pub encode: EncodeConfig,
    /// Training buffer configuration.
    pub buffer: BufferConfig,
    /// Training iterations per streamed sample (n_rep).
    pub n_rep: u32,
    /// Adam configuration for the INN group.
    pub adam: AdamConfig,
    /// VAE learning-rate multiplier m_VAE.
    pub m_vae: f32,
    /// Producer/consumer placement.
    pub placement: Placement,
    /// Staging data plane: the timing model every window-payload
    /// transfer is priced with (and, under the netsim backend, charged
    /// to the run's modelled data-plane clock).
    pub data_plane: DataPlane,
    /// Wire codec for the staged window payloads: [`WireCodec::None`]
    /// streams raw little-endian lanes (lossless, the default);
    /// [`WireCodec::F16`] and [`WireCodec::QuantU16`] shrink the wire at
    /// a documented per-lane accuracy cost (see `docs/ARCHITECTURE.md`).
    pub wire_codec: WireCodec,
    /// Staging queue limit (in-flight steps before the producer stalls).
    pub queue_limit: usize,
    /// Simulation (writer) ranks: the KHI box is slab-decomposed along x
    /// into this many shards, one producer thread each. Must divide
    /// `grid.nx`. `1` keeps the original single-domain producer path.
    pub producers: usize,
    /// Learner (reader) ranks: each consumes its round-robin share of the
    /// streamed windows and trains data-parallel, averaging gradients
    /// every iteration. `1` keeps the original single-consumer path.
    pub consumers: usize,
    /// How consumers pace themselves against the stream (blocking
    /// every-step vs newest-step-only with drops).
    pub policy: ConsumerPolicy,
    /// Which collective backend carries all inter-rank communication.
    pub backend: CommBackend,
    /// Which collective algorithm family every rank world executes (and,
    /// under the netsim backend, is priced for):
    /// [`CollectiveAlgo::Log`] (the default) runs binomial-tree
    /// broadcast/gather, Bruck allgather and the size-selected allreduce;
    /// [`CollectiveAlgo::Linear`] keeps the historical linear fan-out
    /// loops as a baseline. Numerics are bit-identical either way — the
    /// log-depth small allreduce replays the canonical ring reduction
    /// order.
    pub collective_algo: CollectiveAlgo,
    /// With `consumers > 1`: run the DDP gradient all-reduce in the
    /// non-blocking comm-worker mode ([`as_nn::ddp::OverlappedGradSync`]
    /// over a dedicated second collective world), overlapping bucket
    /// reduction with bucket filling and the per-iteration loss mean.
    /// Bit-identical to the blocking bucketed path; `false` keeps the
    /// legacy in-line reduction.
    pub overlap_grad_sync: bool,
    /// With `consumers > 1`: the round-robin owner of a window encodes it
    /// once and broadcasts the encoded samples to the peer ranks, so
    /// every rank's replay buffer sees every window at the cost of one
    /// encode (instead of each rank holding only its owned share).
    /// `false` keeps the rank-local-buffer behaviour.
    pub sample_broadcast: bool,
    /// Gradient-bucket size (elements) for the DDP consumers' bucketed
    /// all-reduce ([`as_nn::ddp::sync_gradients_bucketed`]): buckets are
    /// reduced as they fill during the gradient flatten instead of one
    /// whole-model reduction at the end.
    pub grad_bucket: usize,
    /// Master seed.
    pub seed: u64,
    /// Deterministic fault-injection plan ([`crate::faults::FaultPlan`]).
    /// Inert by default; when [`FaultPlan::active`] the workflow arms
    /// tolerant collective worlds, routes consumers through the
    /// fault-tolerant loops (checkpoint/restart, bounded-timeout
    /// collectives, graceful rank-death degradation) and executes the
    /// plan's seeded event schedule.
    pub faults: FaultPlan,
    /// Surrogate serving tier: with `Some`, the learner publishes
    /// immutable versioned snapshots every
    /// [`ServingConfig::publish_every`] training iterations to the
    /// [`crate::snapshot::SnapshotSink`] passed to
    /// [`crate::workflow::run_workflow_with_sink`]. `None` (the default)
    /// keeps the legacy training-only workflow bit-for-bit.
    pub serving: Option<ServingConfig>,
}

impl WorkflowConfig {
    /// A CPU-scale configuration that exercises the full pipeline in
    /// seconds (tests, quickstart example).
    pub fn small() -> Self {
        let grid = GridSpec::cubic(12, 24, 4, 0.5, 0.5);
        let khi = KhiSetup {
            beta: 0.2,
            ppc: 4,
            ..KhiSetup::default()
        };
        let model = ModelConfig::small();
        let detector = Detector::along_x(0.2, 20.0, model.spectrum_dim);
        Self {
            grid,
            khi,
            detector,
            shear_width: 0.06,
            steps_per_sample: 4,
            total_steps: 40,
            encode: EncodeConfig::default(),
            buffer: BufferConfig::default(),
            n_rep: 4,
            adam: AdamConfig {
                lr: 5e-4,
                weight_decay: 0.0,
                ..AdamConfig::default()
            },
            m_vae: 4.0,
            placement: Placement::IntraNode,
            data_plane: DataPlane::Mpi,
            wire_codec: WireCodec::None,
            queue_limit: 2,
            producers: 1,
            consumers: 1,
            policy: ConsumerPolicy::BlockingEveryStep,
            backend: CommBackend::InProcess,
            collective_algo: CollectiveAlgo::Log,
            overlap_grad_sync: false,
            sample_broadcast: false,
            grad_bucket: 8192,
            seed: 1,
            faults: FaultPlan::default(),
            serving: None,
            model,
        }
    }

    /// The paper-fidelity configuration (Frontier-scale; listed for
    /// completeness and used by the scaling models — do not run on a
    /// laptop).
    pub fn paper() -> Self {
        let mut cfg = Self::small();
        cfg.grid = KhiSetup::paper_grid();
        cfg.khi = KhiSetup::default();
        cfg.model = ModelConfig::paper();
        cfg.detector = Detector::along_x(0.1, 100.0, cfg.model.spectrum_dim);
        cfg.encode.sample_points = 30_000;
        cfg.n_rep = 48;
        cfg.adam = AdamConfig::default();
        cfg.total_steps = 2000;
        cfg
    }

    /// Samples emitted per streamed window (one per flow region).
    pub fn samples_per_window(&self) -> usize {
        3
    }

    /// The staging queue limit the configured [`ConsumerPolicy`] implies
    /// (`queue_limit` for blocking, the policy's `max_queue` for
    /// drop-steps).
    pub fn effective_queue_limit(&self) -> usize {
        self.policy.effective_queue_limit(self.queue_limit)
    }

    /// Panics unless the M×K streaming topology is consistent: at least
    /// one rank on each side and an even slab split of the grid.
    pub fn validate_topology(&self) {
        assert!(
            self.producers >= 1 && self.consumers >= 1,
            "topology needs at least one producer and one consumer"
        );
        assert_eq!(
            self.grid.nx % self.producers,
            0,
            "grid.nx = {} must divide evenly into {} producer slabs",
            self.grid.nx,
            self.producers
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn small_config_is_consistent() {
        let c = WorkflowConfig::small();
        c.grid.validate();
        c.validate_topology();
        assert_eq!(c.detector.n_freqs(), c.model.spectrum_dim);
        assert!(c.n_rep >= 1);
        assert_eq!((c.producers, c.consumers), (1, 1), "legacy 1×1 default");
        assert_eq!(c.policy, ConsumerPolicy::BlockingEveryStep, "legacy policy");
        assert!(!c.sample_broadcast, "legacy rank-local buffers");
        assert_eq!(c.backend, CommBackend::InProcess, "legacy transport");
        assert_eq!(
            c.collective_algo,
            CollectiveAlgo::Log,
            "log-depth collectives are the default"
        );
        assert!(!c.overlap_grad_sync, "legacy in-line gradient sync");
        assert!(c.serving.is_none(), "legacy training-only workflow");
        assert_eq!(c.wire_codec, WireCodec::None, "lossless wire by default");
    }

    #[test]
    fn serving_defaults_are_sane() {
        let s = ServingConfig::default();
        assert!(s.publish_every >= 1);
        assert!(s.max_batch >= 1);
        assert!(s.queue_bound >= s.max_batch, "queue must hold a batch");
        assert!(s.posterior_samples >= 1);
    }

    #[test]
    fn policy_queue_limits() {
        let mut c = WorkflowConfig::small();
        c.queue_limit = 3;
        assert_eq!(c.effective_queue_limit(), 3);
        c.policy = ConsumerPolicy::drop_steps(1);
        assert_eq!(c.effective_queue_limit(), 1);
        assert!(c.policy.drops_steps());
        assert_eq!(c.policy.label(), "drop_steps");
        assert_eq!(ConsumerPolicy::BlockingEveryStep.label(), "blocking");
        assert_eq!(
            ConsumerPolicy::drop_steps(4),
            ConsumerPolicy::DropSteps {
                max_queue: 4,
                min_queue: 0
            },
            "the constructor defaults to always-jump"
        );
    }

    #[test]
    fn backend_labels() {
        assert_eq!(CommBackend::InProcess.label(), "in_process");
        assert_eq!(CommBackend::netsim_frontier().label(), "netsim-frontier");
        assert_eq!(CommBackend::netsim_summit().label(), "netsim-summit");
    }

    #[test]
    fn small_grid_admits_the_benchmark_topologies() {
        // The fig_workflow_scaling sweep needs 1, 2 and 4 producer slabs.
        for m in [1usize, 2, 4] {
            let mut c = WorkflowConfig::small();
            c.producers = m;
            c.consumers = 2;
            c.validate_topology();
        }
    }

    #[test]
    #[should_panic(expected = "divide evenly")]
    fn uneven_slab_split_is_rejected() {
        let mut c = WorkflowConfig::small();
        c.producers = 5; // 12 cells across 5 slabs
        c.validate_topology();
    }

    #[test]
    fn paper_config_matches_headline_numbers() {
        let c = WorkflowConfig::paper();
        assert_eq!((c.grid.nx, c.grid.ny, c.grid.nz), (192, 256, 12));
        assert_eq!(c.encode.sample_points, 30_000);
        assert_eq!(c.model.vae.latent, 544);
        assert_eq!(c.n_rep, 48);
    }

    #[test]
    fn placement_fabric_fractions() {
        assert!(Placement::IntraNode.fabric_fraction() < Placement::InterNode.fabric_fraction());
    }
}
