//! The consumer: the MLapp side of the pipeline.
//!
//! Receives particle and radiation iterations, encodes per-region
//! training samples, feeds the experience-replay buffer and trains the
//! VAE+INN `n_rep` iterations per streamed window (§IV-C).

use crate::config::WorkflowConfig;
use crate::encode::{batch_to_tensors, Sample};
use as_nn::model::{ArtificialScientistModel, LossReport, ModelOptimizer};
use as_openpmd::reader::OpenPmdReader;
use as_pic::diag::FlowRegion;
use as_radiation::spectrum::Spectrum;
use as_replay::buffer::TrainingBuffer;
use as_replay::scheduler::{ReplaySchedule, StallPolicy};
use as_staging::engine::SstReader;
use as_tensor::TensorRng;
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Consumer-side outcome.
pub struct ConsumerReport {
    /// The trained model.
    pub model: ArtificialScientistModel,
    /// Loss after every training iteration.
    pub losses: Vec<LossReport>,
    /// Windows received from the stream.
    pub windows: u64,
    /// Samples pushed into the training buffer.
    pub samples: u64,
    /// Wall seconds spent in training iterations.
    pub train_seconds: f64,
    /// Bytes fetched from the particle stream.
    pub particle_bytes: u64,
}

/// Run the consumer until the streams end.
pub fn run_consumer(
    cfg: &WorkflowConfig,
    particle_stream: SstReader,
    radiation_stream: SstReader,
) -> ConsumerReport {
    let mut p_reader = OpenPmdReader::new(particle_stream);
    let mut r_reader = OpenPmdReader::new(radiation_stream);
    let mut model = ArtificialScientistModel::new(cfg.model.clone(), cfg.seed);
    let mut opt = ModelOptimizer::new(cfg.adam, cfg.m_vae);
    let mut buffer: TrainingBuffer<Sample> = TrainingBuffer::new(cfg.buffer, cfg.seed ^ 0xEB);
    let mut schedule = ReplaySchedule::new(cfg.n_rep, StallPolicy::StallProducer);
    let mut enc_rng = StdRng::seed_from_u64(cfg.seed ^ 0xE0C0DE);
    let mut train_rng = TensorRng::seeded(cfg.seed ^ 0x7241);

    let mut report_losses = Vec::new();
    let mut windows = 0u64;
    let mut samples = 0u64;
    let mut train_seconds = 0.0;

    loop {
        let p_it = p_reader.next_iteration();
        let r_it = r_reader.next_iteration();
        let (mut p_it, mut r_it) = match (p_it, r_it) {
            (Some(a), Some(b)) => (a, b),
            (None, None) => break,
            _ => panic!("particle and radiation streams ended out of sync"),
        };
        windows += 1;

        // Fetch phase space.
        let xs = p_it.particles("e", "position", "x");
        let ys = p_it.particles("e", "position", "y");
        let zs = p_it.particles("e", "position", "z");
        let uxs = p_it.particles("e", "momentum", "x");
        let uys = p_it.particles("e", "momentum", "y");
        let uzs = p_it.particles("e", "momentum", "z");
        let step = p_it.iteration;

        // Build one sample per flow region.
        let (_, ly, _) = cfg.grid.extents();
        for (region_idx, _region) in FlowRegion::all().iter().enumerate() {
            let idx: Vec<usize> = (0..xs.len())
                .filter(|&i| region_of(ys[i], ly, cfg.shear_width) == region_idx)
                .collect();
            if idx.is_empty() {
                continue;
            }
            let pick = |src: &[f64]| -> Vec<f64> { idx.iter().map(|&i| src[i]).collect() };
            let (rx, ry, rz) = (pick(&xs), pick(&ys), pick(&zs));
            let (rux, ruy, ruz) = (pick(&uxs), pick(&uys), pick(&uzs));
            let (center, half) = bounding_box(&rx, &ry, &rz);
            let points = cfg.encode.encode_points(
                &rx,
                &ry,
                &rz,
                &rux,
                &ruy,
                &ruz,
                center,
                half,
                &mut enc_rng,
            );
            let flat = r_it.f32_array(&format!("radiation/region{region_idx}/intensity"));
            // First direction's spectrum conditions the INN.
            let n_f = cfg.detector.n_freqs();
            let intensity: Vec<f64> = flat[..n_f].iter().map(|&v| v as f64).collect();
            let spec = Spectrum::new(cfg.detector.frequencies.clone(), intensity);
            let spectrum = cfg.encode.encode_spectrum(&spec, cfg.model.spectrum_dim);
            buffer.push(Sample {
                points,
                spectrum,
                region: region_idx,
                step,
            });
            samples += 1;
        }
        p_reader.close_iteration(p_it);
        r_reader.close_iteration(r_it);

        // Train n_rep iterations for this window.
        schedule.on_step();
        while schedule.should_train() && buffer.ready() {
            let t0 = std::time::Instant::now();
            let batch = buffer.sample_batch();
            let (points, spectra) = batch_to_tensors(&batch, &cfg.model);
            model.zero_grad();
            let report = model.accumulate_gradients(&points, &spectra, &mut train_rng);
            opt.step(&mut model);
            train_seconds += t0.elapsed().as_secs_f64();
            report_losses.push(report);
            schedule.on_iteration();
        }
    }

    let particle_bytes = p_reader.stats().total_bytes();
    ConsumerReport {
        model,
        losses: report_losses,
        windows,
        samples,
        train_seconds,
        particle_bytes,
    }
}

fn region_of(y: f64, ly: f64, shear_width: f64) -> usize {
    match FlowRegion::classify(y, ly, shear_width) {
        FlowRegion::Approaching => 0,
        FlowRegion::Receding => 1,
        FlowRegion::Vortex => 2,
    }
}

/// Axis-aligned bounding box of a point set: `(center, half_extents)`.
pub fn bounding_box(xs: &[f64], ys: &[f64], zs: &[f64]) -> ([f64; 3], [f64; 3]) {
    let minmax = |v: &[f64]| {
        let lo = v.iter().cloned().fold(f64::INFINITY, f64::min);
        let hi = v.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
        (lo, hi)
    };
    let (x0, x1) = minmax(xs);
    let (y0, y1) = minmax(ys);
    let (z0, z1) = minmax(zs);
    let center = [(x0 + x1) / 2.0, (y0 + y1) / 2.0, (z0 + z1) / 2.0];
    let half = [
        ((x1 - x0) / 2.0).max(1e-6),
        ((y1 - y0) / 2.0).max(1e-6),
        ((z1 - z0) / 2.0).max(1e-6),
    ];
    (center, half)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bounding_box_of_unit_cube() {
        let xs = [0.0, 1.0];
        let ys = [2.0, 4.0];
        let zs = [1.0, 1.0];
        let (c, h) = bounding_box(&xs, &ys, &zs);
        assert_eq!(c, [0.5, 3.0, 1.0]);
        assert!((h[0] - 0.5).abs() < 1e-12);
        assert!((h[1] - 1.0).abs() < 1e-12);
        assert!(h[2] >= 1e-6, "degenerate axis gets a floor");
    }

    #[test]
    fn region_indexing_matches_flow_region_order() {
        let ly = 8.0;
        assert_eq!(region_of(4.0, ly, 0.05), 0);
        assert_eq!(region_of(0.4, ly, 0.05), 1);
        assert_eq!(region_of(2.0, ly, 0.05), 2);
    }
}
