//! The consumer: the MLapp side of the pipeline.
//!
//! Receives particle and radiation iterations, encodes per-region
//! training samples, feeds the experience-replay buffer and trains the
//! VAE+INN `n_rep` iterations per streamed window (§IV-C).
//!
//! Two drivers share the per-window encoding path:
//! - [`run_consumer`]: the original single-rank consumer — the exact
//!   legacy 1×1 behaviour under [`ConsumerPolicy::BlockingEveryStep`]
//!   (same seeds, same iteration order);
//! - [`run_ddp_consumer`]: one rank of a K-way data-parallel learner
//!   group. Every rank sees every streamed step (SST semantics) but only
//!   the round-robin owner (`window % K == rank`) fetches the payload and
//!   feeds its rank-local replay buffer (unless
//!   `WorkflowConfig::sample_broadcast` shares the owner's encoded
//!   samples with every rank); training is synchronous, with gradients
//!   averaged through [`as_nn::ddp::sync_gradients_bucketed`] every
//!   iteration, which keeps parameters bit-identical across ranks
//!   (asserted each iteration via [`as_nn::ddp::param_hash`]).
//!
//! # Streaming policy
//!
//! Both drivers honour [`WorkflowConfig::policy`]:
//! - `BlockingEveryStep` consumes windows in order, letting the bounded
//!   SST queue stall the producer when training falls behind;
//! - [`ConsumerPolicy::DropSteps`] jumps to the **newest** published
//!   window — but only once at least `min_queue` unseen windows are
//!   pending (`0` = always jump); older pending windows are closed
//!   unread. Skipped windows are counted in
//!   [`ConsumerReport::dropped_windows`] and their queue slots free
//!   immediately, so producer stall stays bounded by the queue depth.
//!   Under DDP, rank 0 picks the target window and broadcasts its
//!   stream-step index so every rank skips the *same* window set — the
//!   collective schedule (go/no-go, gradient all-reduce, hash check)
//!   stays identical on all ranks.
//!
//! Every published window is accounted for exactly once:
//! `windows + dropped_windows + orphaned_windows ==`
//! [`ConsumerReport::published_windows`].
//!
//! If the two streams end out of sync (a producer dying between the
//! particle and radiation emission of a window), the consumer drains the
//! longer stream and reports the mismatch in
//! [`ConsumerReport::orphaned_windows`] instead of panicking.

use crate::checkpoint::{LearnerCheckpoint, LearnerProgress};
use crate::config::{ConsumerPolicy, WorkflowConfig};
use crate::encode::{batch_to_tensors, Sample};
use crate::faults::{InjectedFault, KillMode};
use crate::ft::FtComm;
use crate::snapshot::{SnapshotPublisher, SnapshotSink};
use as_cluster::collective::Collective;
use as_nn::ddp::{param_hash, sync_gradients_bucketed, sync_gradients_with, OverlappedGradSync};
use as_nn::model::{ArtificialScientistModel, LossReport, ModelOptimizer};
use as_openpmd::reader::{IterationData, OpenPmdReader};
use as_pic::diag::FlowRegion;
use as_radiation::spectrum::Spectrum;
use as_replay::buffer::TrainingBuffer;
use as_replay::scheduler::{ReplaySchedule, StallPolicy};
use as_staging::engine::SstReader;
use as_tensor::TensorRng;
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Consumer-side outcome (one rank).
pub struct ConsumerReport {
    /// The trained model.
    pub model: ArtificialScientistModel,
    /// Loss after every training iteration (rank-mean in DDP mode).
    pub losses: Vec<LossReport>,
    /// Windows received from the stream (every rank sees every window).
    pub windows: u64,
    /// Samples pushed into this rank's training buffer.
    pub samples: u64,
    /// Wall seconds spent in training iterations.
    pub train_seconds: f64,
    /// Bytes fetched from the particle stream by this rank.
    pub particle_bytes: u64,
    /// This rank's index in the learner group (0 for the single consumer).
    pub rank: usize,
    /// Learner group size (1 for the single consumer).
    pub world: usize,
    /// PIC iteration indices of the windows this rank owned (fetched and
    /// encoded). Across ranks these partition the stream exactly once.
    pub owned_windows: Vec<u64>,
    /// Windows left on one stream after the other ended — nonzero only
    /// when the producer died between the two emissions of a window.
    pub orphaned_windows: u64,
    /// Windows this rank skipped unread under
    /// [`ConsumerPolicy::DropSteps`] (always 0 when blocking).
    pub dropped_windows: u64,
    /// Total windows the producer published (the larger of the two
    /// streams' step counts). Always equals
    /// `windows + dropped_windows + orphaned_windows` — every published
    /// window is consumed, dropped, or orphaned, never lost silently.
    pub published_windows: u64,
    /// FNV-1a hash of the final parameter bits (DDP sync witness).
    pub param_hash: u64,
    /// Parameter hash after **every** training iteration, in order — the
    /// cross-backend determinism witness: two runs of the same seeded
    /// config under different [`crate::config::CommBackend`]s must
    /// produce identical sequences (delays may not change numerics).
    /// Recorded by the DDP driver, where the hash is already computed
    /// for the per-iteration divergence check; empty for the legacy
    /// single consumer, which has no cross-rank traffic to witness.
    pub param_hashes: Vec<u64>,
    /// Inter-rank payload bytes the learner group's collective backends
    /// moved (world-wide counters observed at this rank's exit; gradient
    /// buckets, loss means, go/no-go and hash collectives — summed over
    /// the main world and, in overlap mode, the dedicated gradient
    /// world). Zero for the single consumer, which has no peers.
    pub comm_bytes: u64,
    /// Modelled fabric seconds charged by the collective backend
    /// (world-wide; nonzero only under `CommBackend::NetSim`).
    pub comm_model_seconds: f64,
    /// Point-to-point messages the learner group's collectives sent
    /// (world-wide counter, summed over the main world and — in overlap
    /// mode — the dedicated gradient world). Zero for the single
    /// consumer.
    pub comm_messages: u64,
    /// Windows destroyed by injected faults on this rank: checkpoint
    /// rollback after a kill-restart plus scheduled skip events. With it
    /// the per-rank accounting identity becomes
    /// `windows + dropped + orphaned + lost == published`. Zero on a
    /// healthy run.
    pub lost_windows: u64,
    /// Kill-restart cycles this rank survived.
    pub restarts: u64,
    /// Wall seconds spent recovering: checkpoint restores plus time
    /// waiting out death budgets on condemned peers.
    pub recovery_seconds: f64,
    /// Times this rank watched the learner group shrink (a peer declared
    /// dead and excluded from the collective schedule).
    pub degradations: u64,
    /// Live learner ranks at exit (`world` minus condemned peers).
    pub world_after: usize,
    /// Wire bytes this rank fetched from the two staging streams
    /// (particles + radiation) — equal to the logical payload bytes
    /// under the lossless codec, smaller under a compressing
    /// [`as_staging::codec::WireCodec`].
    pub staging_wire_bytes: u64,
    /// Modelled data-plane seconds the configured
    /// [`as_staging::dataplane::DataPlane`] charged this rank's staging
    /// reads (both streams).
    pub staging_model_seconds: f64,
}

/// Build the snapshot publisher when both the config knob and a sink
/// are present; otherwise the drivers run the legacy training-only
/// loops bit-for-bit.
fn make_publisher(
    cfg: &WorkflowConfig,
    sink: Option<std::sync::Arc<dyn SnapshotSink>>,
) -> Option<SnapshotPublisher> {
    match (&cfg.serving, sink) {
        (Some(serving), Some(sink)) => Some(SnapshotPublisher::new(sink, serving, cfg.encode)),
        _ => None,
    }
}

/// Run the single-rank consumer until the streams end (legacy 1×1 path).
pub fn run_consumer(
    cfg: &WorkflowConfig,
    particle_stream: SstReader,
    radiation_stream: SstReader,
) -> ConsumerReport {
    run_consumer_serving(cfg, particle_stream, radiation_stream, None)
}

/// [`run_consumer`] with an optional snapshot sink: when
/// [`WorkflowConfig::serving`] is set, a [`crate::snapshot::ModelSnapshot`]
/// is published every `publish_every` training iterations. With `None`
/// (or `serving: None`) the loop is the legacy path bit-for-bit.
pub fn run_consumer_serving(
    cfg: &WorkflowConfig,
    particle_stream: SstReader,
    radiation_stream: SstReader,
    sink: Option<std::sync::Arc<dyn SnapshotSink>>,
) -> ConsumerReport {
    let mut publisher = make_publisher(cfg, sink);
    let mut p_reader = OpenPmdReader::new(particle_stream);
    let mut r_reader = OpenPmdReader::new(radiation_stream);
    let mut model = ArtificialScientistModel::new(cfg.model.clone(), cfg.seed);
    let mut opt = ModelOptimizer::new(cfg.adam, cfg.m_vae);
    let mut buffer: TrainingBuffer<Sample> = TrainingBuffer::new(cfg.buffer, cfg.seed ^ 0xEB);
    let mut schedule = ReplaySchedule::new(cfg.n_rep, StallPolicy::StallProducer);
    let mut enc_rng = StdRng::seed_from_u64(cfg.seed ^ 0xE0C0DE);
    let mut train_rng = TensorRng::seeded(cfg.seed ^ 0x7241);

    let mut report_losses = Vec::new();
    let mut windows = 0u64;
    let mut samples = 0u64;
    let mut train_seconds = 0.0;
    let mut owned_windows = Vec::new();
    let mut orphaned_windows = 0u64;
    let mut dropped_windows = 0u64;

    'stream: loop {
        let (mut p_it, mut r_it) = match cfg.policy {
            ConsumerPolicy::BlockingEveryStep => {
                let p_it = p_reader.next_iteration();
                let r_it = r_reader.next_iteration();
                match (p_it, r_it) {
                    (Some(a), Some(b)) => (a, b),
                    (None, None) => break,
                    (Some(a), None) => {
                        p_reader.close_iteration(a);
                        orphaned_windows += 1 + drain_stream(&mut p_reader);
                        break;
                    }
                    (None, Some(b)) => {
                        r_reader.close_iteration(b);
                        orphaned_windows += 1 + drain_stream(&mut r_reader);
                        break;
                    }
                }
            }
            ConsumerPolicy::DropSteps { min_queue, .. } => {
                let (p_skip, p_opt) = p_reader.next_iteration_latest_min(min_queue as u64);
                match pair_drop_steps_window(
                    p_skip,
                    p_opt,
                    &mut p_reader,
                    &mut r_reader,
                    &mut dropped_windows,
                    &mut orphaned_windows,
                ) {
                    Some(pair) => pair,
                    None => break 'stream,
                }
            }
        };
        windows += 1;
        owned_windows.push(p_it.iteration);
        let fresh = encode_window(cfg, &mut p_it, &mut r_it, &mut enc_rng);
        samples += fresh.len() as u64;
        for s in fresh {
            buffer.push(s);
        }
        p_reader.close_iteration(p_it);
        r_reader.close_iteration(r_it);

        // Train n_rep iterations for this window.
        schedule.on_step();
        while schedule.should_train() && buffer.ready() {
            let t0 = std::time::Instant::now();
            let batch = buffer.sample_batch();
            let (points, spectra) = batch_to_tensors(&batch, &cfg.model);
            model.zero_grad();
            let report = model.accumulate_gradients(&points, &spectra, &mut train_rng);
            opt.step(&mut model);
            train_seconds += t0.elapsed().as_secs_f64();
            report_losses.push(report);
            schedule.on_iteration();
            // Snapshot publication: single rank, no collective to price.
            if let Some(pb) = publisher.as_mut() {
                let iters = report_losses.len() as u64;
                if pb.due(iters) {
                    let snap = pb.capture(&mut model, iters);
                    pb.send(snap);
                }
            }
        }
    }

    let particle_bytes = p_reader.stats().total_bytes();
    let staging_wire_bytes = p_reader.stats().wire_bytes() + r_reader.stats().wire_bytes();
    let staging_model_seconds =
        p_reader.stats().simulated_seconds() + r_reader.stats().simulated_seconds();
    let published_windows = p_reader.published_steps().max(r_reader.published_steps());
    let hash = param_hash(&mut model);
    ConsumerReport {
        model,
        losses: report_losses,
        windows,
        samples,
        train_seconds,
        particle_bytes,
        rank: 0,
        world: 1,
        owned_windows,
        orphaned_windows,
        dropped_windows,
        published_windows,
        param_hash: hash,
        param_hashes: Vec::new(),
        comm_bytes: 0,
        comm_model_seconds: 0.0,
        comm_messages: 0,
        lost_windows: 0,
        restarts: 0,
        recovery_seconds: 0.0,
        degradations: 0,
        world_after: 1,
        staging_wire_bytes,
        staging_model_seconds,
    }
}

/// Run one rank of a K-way data-parallel consumer group until the
/// streams end.
///
/// `comm` spans the learner ranks (any [`Collective`] backend). Window
/// ownership is round-robin in stream order; training is synchronous and
/// gradient-averaged every iteration (bucketed —
/// [`as_nn::ddp::sync_gradients_bucketed`] with `cfg.grad_bucket`
/// elements per bucket), so every rank holds bit-identical parameters
/// throughout (asserted). Iterations only run once *every* rank can draw
/// a batch — the go/no-go is collective, keeping the allreduce schedule
/// identical on all ranks.
///
/// With [`WorkflowConfig::overlap_grad_sync`] the bucket reduction runs
/// non-blocking on a comm-worker thread over `grad_comm` — a **second**
/// collective world spanning the same ranks (its own endpoint per rank,
/// like a NCCL gradient stream), so bucket all-reduces overlap the
/// per-iteration loss mean on `comm` without the two schedules ever
/// sharing an endpoint. The reduction itself is bit-identical to the
/// blocking path ([`as_nn::ddp::OverlappedGradSync`]).
///
/// Under [`ConsumerPolicy::DropSteps`] rank 0 selects the target window
/// (freshest, or next-in-order while fewer than `min_queue` windows are
/// pending) and broadcasts its stream-step index; every peer skips to
/// exactly that step. All ranks therefore process (and drop) the *same*
/// windows, which keeps the per-window collective schedule — and the
/// round-robin ownership — identical across the group.
pub fn run_ddp_consumer<C: Collective>(
    cfg: &WorkflowConfig,
    comm: C,
    grad_comm: Option<C>,
    particle_stream: SstReader,
    radiation_stream: SstReader,
) -> ConsumerReport {
    run_ddp_consumer_serving(
        cfg,
        comm,
        grad_comm,
        particle_stream,
        radiation_stream,
        None,
    )
}

/// [`run_ddp_consumer`] with an optional snapshot sink. When
/// [`WorkflowConfig::serving`] is set, rank 0 captures a
/// [`crate::snapshot::ModelSnapshot`] every `publish_every` training
/// iterations (the counter is bit-identical across ranks, so every rank
/// agrees on the schedule), prices the payload along the group's
/// broadcast schedule (`account_broadcast_payload` — the netsim backend
/// charges it like any other traffic) and broadcasts the
/// `(version, param_hash)` metadata; peers assert the hash against their
/// own bit-identical parameters — a cross-rank torn-weights check — and
/// advance their version counters in lockstep.
pub fn run_ddp_consumer_serving<C: Collective>(
    cfg: &WorkflowConfig,
    comm: C,
    grad_comm: Option<C>,
    particle_stream: SstReader,
    radiation_stream: SstReader,
    sink: Option<std::sync::Arc<dyn SnapshotSink>>,
) -> ConsumerReport {
    let mut publisher = make_publisher(cfg, sink);
    let rank = comm.rank();
    let world = comm.size();
    let mut overlap = if cfg.overlap_grad_sync {
        let g = grad_comm
            .unwrap_or_else(|| panic!("overlap_grad_sync needs a dedicated gradient world"));
        assert_eq!(g.rank(), rank, "gradient world must mirror the main world");
        assert_eq!(g.size(), world, "gradient world must mirror the main world");
        Some(OverlappedGradSync::new(std::sync::Arc::new(g)))
    } else {
        None
    };
    // Different data/noise streams per rank, identical weights — the same
    // seeding discipline as `as_nn::ddp::train_ddp`.
    let rank_mix = 0x9E37_79B9_7F4A_7C15u64.wrapping_mul(rank as u64 + 1);
    let mut p_reader = OpenPmdReader::new(particle_stream);
    let mut r_reader = OpenPmdReader::new(radiation_stream);
    let mut model = ArtificialScientistModel::new(cfg.model.clone(), cfg.seed);
    let mut opt = ModelOptimizer::new(cfg.adam, cfg.m_vae);
    let mut buffer: TrainingBuffer<Sample> =
        TrainingBuffer::new(cfg.buffer, cfg.seed ^ 0xEB ^ rank_mix);
    let mut schedule = ReplaySchedule::new(cfg.n_rep, StallPolicy::StallProducer);
    let mut enc_rng = StdRng::seed_from_u64(cfg.seed ^ 0xE0C0DE ^ rank_mix);
    let mut train_rng = TensorRng::seeded(cfg.seed ^ 0x7241 ^ rank_mix);

    let mut report_losses = Vec::new();
    let mut windows = 0u64;
    let mut samples = 0u64;
    let mut train_seconds = 0.0;
    let mut owned_windows = Vec::new();
    let mut orphaned_windows = 0u64;
    let mut dropped_windows = 0u64;
    let mut param_hashes = Vec::new();

    'stream: loop {
        let (mut p_it, mut r_it) = match cfg.policy {
            ConsumerPolicy::BlockingEveryStep => {
                let p_it = p_reader.next_iteration();
                let r_it = r_reader.next_iteration();
                match (p_it, r_it) {
                    (Some(a), Some(b)) => (a, b),
                    (None, None) => break,
                    (Some(a), None) => {
                        p_reader.close_iteration(a);
                        orphaned_windows += 1 + drain_stream(&mut p_reader);
                        break;
                    }
                    (None, Some(b)) => {
                        r_reader.close_iteration(b);
                        orphaned_windows += 1 + drain_stream(&mut r_reader);
                        break;
                    }
                }
            }
            ConsumerPolicy::DropSteps { min_queue, .. } => {
                // Rank 0 decides which window to take (freshest, or
                // next-in-order while the backlog is shallower than
                // min_queue); peers follow to the same stream step.
                // Every rank enters a round with the same cursor, so the
                // skip counts match and the group's collective schedule
                // stays aligned.
                let (p_skip, p_opt) = if rank == 0 {
                    let (skip, opt) = p_reader.next_iteration_latest_min(min_queue as u64);
                    let target: Option<u64> = opt.as_ref().map(|it| it.stream_step());
                    comm.broadcast(0, Some(target));
                    (skip, opt)
                } else {
                    match comm.broadcast::<Option<u64>>(0, None) {
                        Some(target) => p_reader.next_iteration_at_least(target),
                        None => (0, None),
                    }
                };
                // The pairing/accounting outcome is a function of global
                // stream state and the shared target, so every rank takes
                // the same branch on the same window — on end-of-stream no
                // collective runs below and all ranks exit together.
                match pair_drop_steps_window(
                    p_skip,
                    p_opt,
                    &mut p_reader,
                    &mut r_reader,
                    &mut dropped_windows,
                    &mut orphaned_windows,
                ) {
                    Some(pair) => pair,
                    None => break 'stream,
                }
            }
        };
        let slot = windows;
        windows += 1;
        let owner = (slot % world as u64) as usize;
        if cfg.sample_broadcast {
            // Owner-computed broadcast: one rank pays the fetch+encode,
            // every rank's buffer receives the encoded samples (a few KiB
            // per window vs the full phase-space fetch).
            let fresh = if rank == owner {
                owned_windows.push(p_it.iteration);
                encode_window(cfg, &mut p_it, &mut r_it, &mut enc_rng)
            } else {
                Vec::new()
            };
            if rank == owner {
                // The broadcast payload is opaque to the transport;
                // declare its per-copy serialized size so the backend can
                // price it along the broadcast schedule (the netsim
                // backend charges the tree's bandwidth terms; byte
                // telemetry stays one copy per peer under either algo).
                let per_copy: u64 = fresh
                    .iter()
                    .map(|s| ((s.points.len() + s.spectrum.len()) * 4 + 16) as u64)
                    .sum();
                comm.account_broadcast_payload(owner, per_copy);
            }
            let shared = comm.broadcast(owner, if rank == owner { Some(fresh) } else { None });
            samples += shared.len() as u64;
            for s in shared {
                buffer.push(s);
            }
        } else if rank == owner {
            owned_windows.push(p_it.iteration);
            let fresh = encode_window(cfg, &mut p_it, &mut r_it, &mut enc_rng);
            samples += fresh.len() as u64;
            for s in fresh {
                buffer.push(s);
            }
        }
        // Price this rank's staging fetches for the window on the
        // collective's data plane (zero for non-owners, who fetched no
        // payload; the netsim backend sleeps the modelled cost, the
        // channel backend ignores it).
        comm.account_dataplane(
            p_it.wire_bytes_fetched() + r_it.wire_bytes_fetched(),
            p_it.simulated_seconds() + r_it.simulated_seconds(),
        );
        p_reader.close_iteration(p_it);
        r_reader.close_iteration(r_it);

        schedule.on_step();
        while schedule.should_train() {
            // Collective go/no-go: every rank must be able to draw a
            // batch before a synchronous iteration can run. Until the
            // last rank owns its first window this skips, and the owed
            // iterations are recovered on later windows.
            let ready = comm.allreduce_scalar_f64(if buffer.ready() { 1.0 } else { 0.0 });
            if (ready.round() as usize) < world {
                break;
            }
            let t0 = std::time::Instant::now();
            let batch = buffer.sample_batch();
            let (points, spectra) = batch_to_tensors(&batch, &cfg.model);
            model.zero_grad();
            let local = model.accumulate_gradients(&points, &spectra, &mut train_rng);
            let loss = match overlap.as_mut() {
                Some(sync) => {
                    // Non-blocking mode: the comm worker reduces buckets
                    // over its dedicated world while this thread runs
                    // the loss-mean collective on the main world;
                    // wait-all right before the optimizer step. Same
                    // buckets, same all-reduce order ⇒ bit-identical to
                    // the blocking arm below.
                    sync.begin(&mut model, cfg.grad_bucket);
                    let loss = mean_loss(&comm, &local, world);
                    sync.wait_all(&mut model);
                    loss
                }
                None => {
                    sync_gradients_bucketed(&comm, &mut model, cfg.grad_bucket);
                    mean_loss(&comm, &local, world)
                }
            };
            opt.step(&mut model);
            train_seconds += t0.elapsed().as_secs_f64();
            report_losses.push(loss);
            schedule.on_iteration();
            // DDP invariant: identical averaged gradients applied to
            // identical optimizer state ⇒ bit-identical parameters.
            let h = param_hash(&mut model);
            let hashes = comm.allgather(h);
            assert!(
                hashes.iter().all(|&x| x == h),
                "DDP consumer ranks diverged after iteration {}: {hashes:?}",
                report_losses.len()
            );
            param_hashes.push(h);
            if let Some(pb) = publisher.as_mut() {
                let iters = report_losses.len() as u64;
                if pb.due(iters) {
                    if rank == 0 {
                        let snap = pb.capture(&mut model, iters);
                        // Price the opaque snapshot payload along the
                        // broadcast schedule (the sample_broadcast
                        // idiom), then broadcast the metadata so the
                        // collective schedule includes the publish.
                        comm.account_broadcast_payload(0, snap.payload_bytes());
                        comm.broadcast(0, Some((snap.version, snap.param_hash)));
                        pb.send(snap);
                    } else {
                        let (_v, root_hash) = comm.broadcast::<(u64, u64)>(0, None);
                        assert_eq!(
                            root_hash, h,
                            "published snapshot hash diverged from rank {rank}'s parameters"
                        );
                        pb.skip();
                    }
                }
            }
        }
    }

    let particle_bytes = p_reader.stats().total_bytes();
    let staging_wire_bytes = p_reader.stats().wire_bytes() + r_reader.stats().wire_bytes();
    let staging_model_seconds =
        p_reader.stats().simulated_seconds() + r_reader.stats().simulated_seconds();
    let published_windows = p_reader.published_steps().max(r_reader.published_steps());
    let hash = param_hash(&mut model);
    ConsumerReport {
        model,
        losses: report_losses,
        windows,
        samples,
        train_seconds,
        particle_bytes,
        rank,
        world,
        owned_windows,
        orphaned_windows,
        dropped_windows,
        published_windows,
        param_hash: hash,
        param_hashes,
        // In overlap mode the bucket traffic lives on the dedicated
        // gradient world — fold both worlds into the group totals.
        comm_bytes: comm.world_bytes_sent() + overlap.as_ref().map_or(0, |s| s.world_bytes_sent()),
        comm_model_seconds: comm.modelled_comm_seconds()
            + overlap.as_ref().map_or(0.0, |s| s.modelled_comm_seconds()),
        comm_messages: comm.world_messages_sent()
            + overlap.as_ref().map_or(0, |s| s.world_messages_sent()),
        lost_windows: 0,
        restarts: 0,
        recovery_seconds: 0.0,
        degradations: 0,
        world_after: world,
        staging_wire_bytes,
        staging_model_seconds,
    }
}

/// Run the single-rank consumer under an **active fault plan** — the
/// fault-tolerant twin of [`run_consumer`]. On top of the legacy loop,
/// keyed on the *arrival counter* (windows taken off the stream):
///
/// - **checkpoint capture** every [`crate::faults::FaultPlan::checkpoint_every`]
///   arrivals, taken at the loop top *before* the kill hook, so a kill
///   landing on a boundary restores the state captured a moment earlier;
/// - **kill events**: [`KillMode::Restart`] rolls back to the latest
///   [`LearnerCheckpoint`] (arrivals consumed since then are counted in
///   [`ConsumerReport::lost_windows`] — stream steps cannot be re-read)
///   and continues; [`KillMode::Die`] panics with an [`InjectedFault`]
///   payload (the orchestrator captures it as a rank failure);
/// - **skip events** ([`crate::faults::FaultEvent::SkipWindows`]): the
///   window is read and closed unprocessed, counted as lost — the
///   reference-run twin of a rollback, for bit-identity comparisons.
///
/// Capture never mutates learner state, and with an event-free plan the
/// training trajectory is bit-identical to [`run_consumer`]'s.
pub fn run_consumer_ft(
    cfg: &WorkflowConfig,
    particle_stream: SstReader,
    radiation_stream: SstReader,
) -> ConsumerReport {
    run_consumer_ft_serving(cfg, particle_stream, radiation_stream, None)
}

/// [`run_consumer_ft`] with an optional snapshot sink (see
/// [`run_consumer_serving`]). The publisher's version counter is *not*
/// checkpointed: a rollback may republish the same iteration range, but
/// versions stay strictly monotone — the engine's hot-swap invariant.
pub fn run_consumer_ft_serving(
    cfg: &WorkflowConfig,
    particle_stream: SstReader,
    radiation_stream: SstReader,
    sink: Option<std::sync::Arc<dyn SnapshotSink>>,
) -> ConsumerReport {
    let mut publisher = make_publisher(cfg, sink);
    let plan = &cfg.faults;
    let mut p_reader = OpenPmdReader::new(particle_stream);
    let mut r_reader = OpenPmdReader::new(radiation_stream);
    let mut model = ArtificialScientistModel::new(cfg.model.clone(), cfg.seed);
    let mut opt = ModelOptimizer::new(cfg.adam, cfg.m_vae);
    let mut buffer: TrainingBuffer<Sample> = TrainingBuffer::new(cfg.buffer, cfg.seed ^ 0xEB);
    let mut schedule = ReplaySchedule::new(cfg.n_rep, StallPolicy::StallProducer);
    let mut enc_rng = StdRng::seed_from_u64(cfg.seed ^ 0xE0C0DE);
    let mut train_rng = TensorRng::seeded(cfg.seed ^ 0x7241);

    let mut report_losses: Vec<LossReport> = Vec::new();
    let mut windows = 0u64;
    let mut samples = 0u64;
    let mut train_seconds = 0.0;
    let mut owned_windows: Vec<u64> = Vec::new();
    let mut orphaned_windows = 0u64;
    let mut dropped_windows = 0u64;
    let mut param_hashes: Vec<u64> = Vec::new();

    let kill = plan.consumer_kill(0);
    let skips = plan.skip_ranges();
    let mut seen = 0u64;
    let mut kill_fired = false;
    let mut ckpt: Option<LearnerCheckpoint> = None;
    let mut last_capture: Option<u64> = None;
    let mut lost_windows = 0u64;
    let mut restarts = 0u64;
    let mut recovery_seconds = 0.0;

    'stream: loop {
        if plan.checkpoint_every > 0
            && seen.is_multiple_of(plan.checkpoint_every)
            && last_capture != Some(seen)
        {
            let progress = LearnerProgress {
                windows,
                samples,
                owned_windows: owned_windows.clone(),
                losses: report_losses.clone(),
                param_hashes: param_hashes.clone(),
            };
            ckpt = Some(LearnerCheckpoint::capture(
                &mut model, &opt, &buffer, &schedule, &enc_rng, &train_rng, &progress,
            ));
            last_capture = Some(seen);
        }
        if let Some((at, mode)) = kill {
            if !kill_fired && seen == at {
                kill_fired = true;
                match mode {
                    KillMode::Die => std::panic::panic_any(InjectedFault {
                        rank: 0,
                        at_window: seen,
                    }),
                    KillMode::Restart => {
                        let t0 = std::time::Instant::now();
                        let c = ckpt.as_ref().unwrap_or_else(|| {
                            panic!("ConsumerKill restart needs checkpoint_every > 0")
                        });
                        let live = windows;
                        let progress = c.restore(
                            &mut model,
                            &mut opt,
                            &mut buffer,
                            &mut schedule,
                            &mut enc_rng,
                            &mut train_rng,
                        );
                        lost_windows += live - progress.windows;
                        windows = progress.windows;
                        samples = progress.samples;
                        owned_windows = progress.owned_windows;
                        report_losses = progress.losses;
                        param_hashes = progress.param_hashes;
                        restarts += 1;
                        recovery_seconds += t0.elapsed().as_secs_f64();
                    }
                }
            }
        }
        let (mut p_it, mut r_it) = match cfg.policy {
            ConsumerPolicy::BlockingEveryStep => {
                let p_it = p_reader.next_iteration();
                let r_it = r_reader.next_iteration();
                match (p_it, r_it) {
                    (Some(a), Some(b)) => (a, b),
                    (None, None) => break,
                    (Some(a), None) => {
                        p_reader.close_iteration(a);
                        orphaned_windows += 1 + drain_stream(&mut p_reader);
                        break;
                    }
                    (None, Some(b)) => {
                        r_reader.close_iteration(b);
                        orphaned_windows += 1 + drain_stream(&mut r_reader);
                        break;
                    }
                }
            }
            ConsumerPolicy::DropSteps { min_queue, .. } => {
                let (p_skip, p_opt) = p_reader.next_iteration_latest_min(min_queue as u64);
                match pair_drop_steps_window(
                    p_skip,
                    p_opt,
                    &mut p_reader,
                    &mut r_reader,
                    &mut dropped_windows,
                    &mut orphaned_windows,
                ) {
                    Some(pair) => pair,
                    None => break 'stream,
                }
            }
        };
        let arrival = seen;
        seen += 1;
        if skips.iter().any(|&(f, t)| arrival >= f && arrival <= t) {
            p_reader.close_iteration(p_it);
            r_reader.close_iteration(r_it);
            lost_windows += 1;
            continue 'stream;
        }
        windows += 1;
        owned_windows.push(p_it.iteration);
        let fresh = encode_window(cfg, &mut p_it, &mut r_it, &mut enc_rng);
        samples += fresh.len() as u64;
        for s in fresh {
            buffer.push(s);
        }
        p_reader.close_iteration(p_it);
        r_reader.close_iteration(r_it);

        schedule.on_step();
        while schedule.should_train() && buffer.ready() {
            let t0 = std::time::Instant::now();
            let batch = buffer.sample_batch();
            let (points, spectra) = batch_to_tensors(&batch, &cfg.model);
            model.zero_grad();
            let report = model.accumulate_gradients(&points, &spectra, &mut train_rng);
            opt.step(&mut model);
            train_seconds += t0.elapsed().as_secs_f64();
            report_losses.push(report);
            schedule.on_iteration();
            // The per-iteration hash history doubles as the rollback
            // bit-identity witness (restored and re-grown on restart).
            param_hashes.push(param_hash(&mut model));
            if let Some(pb) = publisher.as_mut() {
                let iters = report_losses.len() as u64;
                if pb.due(iters) {
                    let snap = pb.capture(&mut model, iters);
                    pb.send(snap);
                }
            }
        }
    }

    let particle_bytes = p_reader.stats().total_bytes();
    let staging_wire_bytes = p_reader.stats().wire_bytes() + r_reader.stats().wire_bytes();
    let staging_model_seconds =
        p_reader.stats().simulated_seconds() + r_reader.stats().simulated_seconds();
    let published_windows = p_reader.published_steps().max(r_reader.published_steps());
    let hash = param_hash(&mut model);
    ConsumerReport {
        model,
        losses: report_losses,
        windows,
        samples,
        train_seconds,
        particle_bytes,
        rank: 0,
        world: 1,
        owned_windows,
        orphaned_windows,
        dropped_windows,
        published_windows,
        param_hash: hash,
        param_hashes,
        comm_bytes: 0,
        comm_model_seconds: 0.0,
        comm_messages: 0,
        lost_windows,
        restarts,
        recovery_seconds,
        degradations: 0,
        world_after: 1,
        staging_wire_bytes,
        staging_model_seconds,
    }
}

/// Run one rank of a K-way learner group under an **active fault plan**
/// — the fault-tolerant twin of [`run_ddp_consumer`].
///
/// Every windowed collective goes through [`FtComm`]: a membership
/// exchange opens each round (survivors agree on who is alive *before*
/// any value-bearing collective), the `DropSteps` window target comes
/// from an elected root (lowest live rank — re-elected if the root
/// dies), window ownership is round-robin over the **live members**, the
/// go/no-go and loss mean sum over the answering members, and the
/// gradient sync runs the same buckets as the legacy path with the
/// contributions reduced in canonical ring order
/// ([`as_nn::ddp::sync_gradients_with`]) — **bit-identical** to
/// [`run_ddp_consumer`] while every rank is alive.
///
/// Kill/checkpoint/skip hooks are as in [`run_consumer_ft`], with two
/// group-level rules: a [`KillMode::Restart`] must land on a checkpoint
/// boundary (so the rollback is a state no-op and the collective
/// schedule never diverges — asserted), and a [`KillMode::Die`] rank
/// marks itself dead on the shared world before unwinding, so survivors
/// fast-fail their waits instead of burning the full death budget.
/// Overlapped gradient sync is not supported under an active plan.
pub fn run_ddp_consumer_ft<C: Collective>(
    cfg: &WorkflowConfig,
    comm: C,
    particle_stream: SstReader,
    radiation_stream: SstReader,
) -> ConsumerReport {
    run_ddp_consumer_ft_serving(cfg, comm, particle_stream, radiation_stream, None)
}

/// [`run_ddp_consumer_ft`] with an optional snapshot sink. The
/// learner-root role follows the membership view: the **lowest live
/// rank** captures, prices and publishes — so when the root dies
/// ([`KillMode::Die`]), publication fails over to the next survivor and
/// the serving tier keeps receiving (monotone) snapshots from the
/// shrunk group. No metadata broadcast is added here: the membership
/// round already aligns the group each window, and every alive rank
/// derives the same due/root decision locally.
pub fn run_ddp_consumer_ft_serving<C: Collective>(
    cfg: &WorkflowConfig,
    comm: C,
    particle_stream: SstReader,
    radiation_stream: SstReader,
    sink: Option<std::sync::Arc<dyn SnapshotSink>>,
) -> ConsumerReport {
    let mut publisher = make_publisher(cfg, sink);
    let plan = &cfg.faults;
    assert!(
        !cfg.overlap_grad_sync,
        "overlap_grad_sync is not supported under an active fault plan"
    );
    let rank = comm.rank();
    let world = comm.size();
    let ft = FtComm::new(&comm, plan);
    let rank_mix = 0x9E37_79B9_7F4A_7C15u64.wrapping_mul(rank as u64 + 1);
    let mut p_reader = OpenPmdReader::new(particle_stream);
    let mut r_reader = OpenPmdReader::new(radiation_stream);
    let mut model = ArtificialScientistModel::new(cfg.model.clone(), cfg.seed);
    let mut opt = ModelOptimizer::new(cfg.adam, cfg.m_vae);
    let mut buffer: TrainingBuffer<Sample> =
        TrainingBuffer::new(cfg.buffer, cfg.seed ^ 0xEB ^ rank_mix);
    let mut schedule = ReplaySchedule::new(cfg.n_rep, StallPolicy::StallProducer);
    let mut enc_rng = StdRng::seed_from_u64(cfg.seed ^ 0xE0C0DE ^ rank_mix);
    let mut train_rng = TensorRng::seeded(cfg.seed ^ 0x7241 ^ rank_mix);

    let mut report_losses: Vec<LossReport> = Vec::new();
    let mut windows = 0u64;
    let mut samples = 0u64;
    let mut train_seconds = 0.0;
    let mut owned_windows: Vec<u64> = Vec::new();
    let mut orphaned_windows = 0u64;
    let mut dropped_windows = 0u64;
    let mut param_hashes: Vec<u64> = Vec::new();

    let kill = plan.consumer_kill(rank);
    let skips = plan.skip_ranges();
    let mut seen = 0u64;
    let mut kill_fired = false;
    let mut ckpt: Option<LearnerCheckpoint> = None;
    let mut last_capture: Option<u64> = None;
    let mut lost_windows = 0u64;
    let mut restarts = 0u64;
    let mut recovery_seconds = 0.0;
    let mut degradations = 0u64;
    let mut members: Vec<usize> = (0..world).collect();

    'stream: loop {
        if plan.checkpoint_every > 0
            && seen.is_multiple_of(plan.checkpoint_every)
            && last_capture != Some(seen)
        {
            let progress = LearnerProgress {
                windows,
                samples,
                owned_windows: owned_windows.clone(),
                losses: report_losses.clone(),
                param_hashes: param_hashes.clone(),
            };
            ckpt = Some(LearnerCheckpoint::capture(
                &mut model, &opt, &buffer, &schedule, &enc_rng, &train_rng, &progress,
            ));
            last_capture = Some(seen);
        }
        if let Some((at, mode)) = kill {
            if !kill_fired && seen == at {
                kill_fired = true;
                match mode {
                    KillMode::Die => {
                        // Self-mark before unwinding: the health board is
                        // shared, so survivors fast-fail their pending
                        // waits instead of burning the full budget.
                        comm.mark_dead(rank);
                        std::panic::panic_any(InjectedFault {
                            rank,
                            at_window: seen,
                        });
                    }
                    KillMode::Restart => {
                        let t0 = std::time::Instant::now();
                        let c = ckpt.as_ref().unwrap_or_else(|| {
                            panic!("ConsumerKill restart needs checkpoint_every > 0")
                        });
                        let live = windows;
                        let progress = c.restore(
                            &mut model,
                            &mut opt,
                            &mut buffer,
                            &mut schedule,
                            &mut enc_rng,
                            &mut train_rng,
                        );
                        assert_eq!(
                            progress.windows, live,
                            "multi-rank kill-restart must land on a checkpoint boundary \
                             (checkpoint_every must divide the kill window)"
                        );
                        lost_windows += live - progress.windows;
                        windows = progress.windows;
                        samples = progress.samples;
                        owned_windows = progress.owned_windows;
                        report_losses = progress.losses;
                        param_hashes = progress.param_hashes;
                        restarts += 1;
                        recovery_seconds += t0.elapsed().as_secs_f64();
                    }
                }
            }
        }
        // Membership round: agree on who is alive before any
        // value-bearing collective of this window. A shrink is a
        // degradation event — ownership, go/no-go threshold and loss
        // divisor all re-derive from the surviving member list.
        let now_alive = ft.members();
        if now_alive.len() < members.len() {
            degradations += 1;
        }
        members = now_alive;

        let (mut p_it, mut r_it) = match cfg.policy {
            ConsumerPolicy::BlockingEveryStep => {
                let p_it = p_reader.next_iteration();
                let r_it = r_reader.next_iteration();
                match (p_it, r_it) {
                    (Some(a), Some(b)) => (a, b),
                    (None, None) => break,
                    (Some(a), None) => {
                        p_reader.close_iteration(a);
                        orphaned_windows += 1 + drain_stream(&mut p_reader);
                        break;
                    }
                    (None, Some(b)) => {
                        r_reader.close_iteration(b);
                        orphaned_windows += 1 + drain_stream(&mut r_reader);
                        break;
                    }
                }
            }
            ConsumerPolicy::DropSteps { min_queue, .. } => {
                // The elected root (lowest live rank) picks the target
                // window and broadcasts its stream step; if the root died
                // this round the election falls through to the next
                // survivor, which reads its own stream instead.
                let mut stash: Option<(u64, Option<IterationData>)> = None;
                let (root, target) = ft.elect_broadcast(|| {
                    let (skip, opt) = p_reader.next_iteration_latest_min(min_queue as u64);
                    let t = opt.as_ref().map(|it| it.stream_step());
                    stash = Some((skip, opt));
                    t
                });
                let (p_skip, p_opt) = if rank == root {
                    stash
                        .take()
                        .unwrap_or_else(|| panic!("root must have stashed its read above"))
                } else {
                    match target {
                        Some(t) => p_reader.next_iteration_at_least(t),
                        None => (0, None),
                    }
                };
                match pair_drop_steps_window(
                    p_skip,
                    p_opt,
                    &mut p_reader,
                    &mut r_reader,
                    &mut dropped_windows,
                    &mut orphaned_windows,
                ) {
                    Some(pair) => pair,
                    None => break 'stream,
                }
            }
        };
        let arrival = seen;
        seen += 1;
        if skips.iter().any(|&(f, t)| arrival >= f && arrival <= t) {
            p_reader.close_iteration(p_it);
            r_reader.close_iteration(r_it);
            lost_windows += 1;
            continue 'stream;
        }
        let slot = windows;
        windows += 1;
        let owner = members[(slot % members.len() as u64) as usize];
        if cfg.sample_broadcast {
            let fresh = if rank == owner {
                owned_windows.push(p_it.iteration);
                encode_window(cfg, &mut p_it, &mut r_it, &mut enc_rng)
            } else {
                Vec::new()
            };
            if rank == owner {
                let per_copy: u64 = fresh
                    .iter()
                    .map(|s| ((s.points.len() + s.spectrum.len()) * 4 + 16) as u64)
                    .sum();
                comm.account_broadcast_payload(owner, per_copy);
            }
            let shared = ft
                .broadcast_from(owner, if rank == owner { Some(fresh) } else { None })
                .unwrap_or_default();
            samples += shared.len() as u64;
            for s in shared {
                buffer.push(s);
            }
        } else if rank == owner {
            owned_windows.push(p_it.iteration);
            let fresh = encode_window(cfg, &mut p_it, &mut r_it, &mut enc_rng);
            samples += fresh.len() as u64;
            for s in fresh {
                buffer.push(s);
            }
        }
        // Price this rank's staging fetches on the collective's data
        // plane (zero for non-owners — see `run_ddp_consumer_serving`).
        comm.account_dataplane(
            p_it.wire_bytes_fetched() + r_it.wire_bytes_fetched(),
            p_it.simulated_seconds() + r_it.simulated_seconds(),
        );
        p_reader.close_iteration(p_it);
        r_reader.close_iteration(r_it);

        schedule.on_step();
        while schedule.should_train() {
            // Membership-aware go/no-go: every answering member must be
            // able to draw a batch before a synchronous iteration runs.
            let mut vote = [if buffer.ready() { 1.0f64 } else { 0.0 }];
            let quorum = ft.allreduce_sum(&mut vote);
            if (vote[0].round() as usize) < quorum {
                break;
            }
            let t0 = std::time::Instant::now();
            let batch = buffer.sample_batch();
            let (points, spectra) = batch_to_tensors(&batch, &cfg.model);
            model.zero_grad();
            let local = model.accumulate_gradients(&points, &spectra, &mut train_rng);
            // Same buckets as the legacy path; each bucket's live
            // contributions are summed in canonical ring order, then
            // averaged over the answering member count.
            sync_gradients_with(&mut model, cfg.grad_bucket, |bucket| {
                ft.allreduce_sum(bucket)
            });
            let loss = ft_mean_loss(&ft, &local);
            opt.step(&mut model);
            train_seconds += t0.elapsed().as_secs_f64();
            report_losses.push(loss);
            schedule.on_iteration();
            let h = param_hash(&mut model);
            let hashes = ft.exchange(h);
            assert!(
                hashes.values().all(|&x| x == h),
                "FT DDP ranks diverged after iteration {}: {hashes:?}",
                report_losses.len()
            );
            param_hashes.push(h);
            if let Some(pb) = publisher.as_mut() {
                let iters = report_losses.len() as u64;
                if pb.due(iters) {
                    let root = members[0];
                    if rank == root {
                        let snap = pb.capture(&mut model, iters);
                        comm.account_broadcast_payload(root, snap.payload_bytes());
                        pb.send(snap);
                    } else {
                        pb.skip();
                    }
                }
            }
        }
    }

    recovery_seconds += ft.condemned_wait_seconds();
    let particle_bytes = p_reader.stats().total_bytes();
    let staging_wire_bytes = p_reader.stats().wire_bytes() + r_reader.stats().wire_bytes();
    let staging_model_seconds =
        p_reader.stats().simulated_seconds() + r_reader.stats().simulated_seconds();
    let published_windows = p_reader.published_steps().max(r_reader.published_steps());
    let hash = param_hash(&mut model);
    ConsumerReport {
        model,
        losses: report_losses,
        windows,
        samples,
        train_seconds,
        particle_bytes,
        rank,
        world,
        owned_windows,
        orphaned_windows,
        dropped_windows,
        published_windows,
        param_hash: hash,
        param_hashes,
        comm_bytes: comm.world_bytes_sent(),
        comm_model_seconds: comm.modelled_comm_seconds(),
        comm_messages: comm.world_messages_sent(),
        lost_windows,
        restarts,
        recovery_seconds,
        degradations,
        world_after: members.len(),
        staging_wire_bytes,
        staging_model_seconds,
    }
}

/// Rank-mean of every loss component over the answering members (the
/// fault-tolerant twin of `mean_loss`; identical result while every
/// rank is alive).
fn ft_mean_loss<C: Collective>(ft: &FtComm<'_, C>, local: &LossReport) -> LossReport {
    let mut buf = [
        local.cd,
        local.kl,
        local.mse,
        local.mmd_z,
        local.mmd_n,
        local.total,
    ];
    let n = ft.allreduce_sum(&mut buf);
    let inv = 1.0 / n as f64;
    LossReport {
        cd: buf[0] * inv,
        kl: buf[1] * inv,
        mse: buf[2] * inv,
        mmd_z: buf[3] * inv,
        mmd_n: buf[4] * inv,
        total: buf[5] * inv,
    }
}

/// Pair a `DropSteps` particle read (already taken, with `p_skip`
/// windows skipped) with its radiation step, keeping both streams in
/// lockstep and settling the drop/orphan accounting. Returns the paired
/// iterations, or `None` when the stream is over — in which case both
/// streams are fully drained and every remaining window is already
/// counted (dropped where both halves existed, orphaned where only one
/// did).
fn pair_drop_steps_window(
    p_skip: u64,
    p_opt: Option<IterationData>,
    p_reader: &mut OpenPmdReader,
    r_reader: &mut OpenPmdReader,
    dropped_windows: &mut u64,
    orphaned_windows: &mut u64,
) -> Option<(IterationData, IterationData)> {
    let Some(p_it) = p_opt else {
        // Particle stream ended with nothing pending; any radiation
        // leftovers lost their particle halves.
        let (p_left, _) = p_reader.next_iteration_at_least(u64::MAX);
        let (r_left, _) = r_reader.next_iteration_at_least(u64::MAX);
        *orphaned_windows += p_left + r_left;
        return None;
    };
    // Keep the radiation stream in lockstep: skip to the same stream
    // step the particle read jumped to.
    let (r_skip, r_opt) = r_reader.next_iteration_at_least(p_it.stream_step());
    match r_opt {
        Some(r_it) => {
            debug_assert_eq!(r_skip, p_skip, "streams skip the same window set");
            *dropped_windows += p_skip;
            Some((p_it, r_it))
        }
        None => {
            // Radiation ended early (producer death): windows present on
            // both streams were dropped; the particle-only tail
            // (including this window) is orphaned.
            *dropped_windows += r_skip;
            *orphaned_windows += (p_skip - r_skip) + 1;
            p_reader.close_iteration(p_it);
            let (left, _) = p_reader.next_iteration_at_least(u64::MAX);
            *orphaned_windows += left;
            None
        }
    }
}

/// Close every remaining iteration of a stream whose partner ended early,
/// returning how many were discarded. Closing (rather than abandoning)
/// lets the surviving writer finish instead of wedging on the queue.
fn drain_stream(reader: &mut OpenPmdReader) -> u64 {
    let mut n = 0;
    while let Some(it) = reader.next_iteration() {
        reader.close_iteration(it);
        n += 1;
    }
    n
}

/// Rank-mean of every loss component (what DDP training curves log).
fn mean_loss<C: Collective>(comm: &C, local: &LossReport, world: usize) -> LossReport {
    let mut buf = [
        local.cd,
        local.kl,
        local.mse,
        local.mmd_z,
        local.mmd_n,
        local.total,
    ];
    comm.allreduce_sum_f64(&mut buf);
    let inv = 1.0 / world as f64;
    LossReport {
        cd: buf[0] * inv,
        kl: buf[1] * inv,
        mse: buf[2] * inv,
        mmd_z: buf[3] * inv,
        mmd_n: buf[4] * inv,
        total: buf[5] * inv,
    }
}

/// Fetch one window's phase space and spectra and encode one sample per
/// non-empty flow region; the caller feeds its buffer (or broadcasts the
/// encoded samples to peers — the owner-computed path).
///
/// The fetch is zero-copy: every particle component comes back as a
/// [`as_staging::view::VarView`] reading straight out of the published
/// block buffers, and the region filter / bounding box / point encoder
/// all index through the view — no per-window gather of the six
/// phase-space arrays. Under the lossless wire codec this path consumes
/// the RNG and performs arithmetic identically to the historical
/// gather-then-encode path, so training trajectories are bit-identical.
fn encode_window(
    cfg: &WorkflowConfig,
    p_it: &mut IterationData,
    r_it: &mut IterationData,
    enc_rng: &mut StdRng,
) -> Vec<Sample> {
    // Phase-space views (no payload copy).
    let xs = p_it.particles_view("e", "position", "x");
    let ys = p_it.particles_view("e", "position", "y");
    let zs = p_it.particles_view("e", "position", "z");
    let uxs = p_it.particles_view("e", "momentum", "x");
    let uys = p_it.particles_view("e", "momentum", "y");
    let uzs = p_it.particles_view("e", "momentum", "z");
    let step = p_it.iteration;
    let mut samples = Vec::new();

    // Build one sample per flow region.
    let (_, ly, _) = cfg.grid.extents();
    for (region_idx, _region) in FlowRegion::all().iter().enumerate() {
        let idx: Vec<usize> = (0..xs.len())
            .filter(|&i| region_of(ys.get_f64(i), ly, cfg.shear_width) == region_idx)
            .collect();
        if idx.is_empty() {
            continue;
        }
        let (center, half) = bounding_box_view(&xs, &ys, &zs, &idx);
        let points = cfg
            .encode
            .encode_points_view(&xs, &ys, &zs, &uxs, &uys, &uzs, &idx, center, half, enc_rng);
        let flat = r_it.f32_array_view(&format!("radiation/region{region_idx}/intensity"));
        // First direction's spectrum conditions the INN.
        let n_f = cfg.detector.n_freqs();
        let intensity: Vec<f64> = (0..n_f).map(|i| flat.get_f32(i) as f64).collect();
        let spec = Spectrum::new(cfg.detector.frequencies.clone(), intensity);
        let spectrum = cfg.encode.encode_spectrum(&spec, cfg.model.spectrum_dim);
        samples.push(Sample {
            points,
            spectrum,
            region: region_idx,
            step,
        });
    }
    samples
}

fn region_of(y: f64, ly: f64, shear_width: f64) -> usize {
    match FlowRegion::classify(y, ly, shear_width) {
        FlowRegion::Approaching => 0,
        FlowRegion::Receding => 1,
        FlowRegion::Vortex => 2,
    }
}

/// Zero-copy twin of [`bounding_box`]: the axis-aligned bounding box of
/// an indexed subset of three staging views. Folds min/max in `idx`
/// order — the same sequence the gather path folded — so the result is
/// bit-identical under the lossless codec.
pub fn bounding_box_view(
    xs: &as_staging::view::VarView,
    ys: &as_staging::view::VarView,
    zs: &as_staging::view::VarView,
    idx: &[usize],
) -> ([f64; 3], [f64; 3]) {
    let minmax = |v: &as_staging::view::VarView| {
        let lo = idx
            .iter()
            .map(|&i| v.get_f64(i))
            .fold(f64::INFINITY, f64::min);
        let hi = idx
            .iter()
            .map(|&i| v.get_f64(i))
            .fold(f64::NEG_INFINITY, f64::max);
        (lo, hi)
    };
    let (x0, x1) = minmax(xs);
    let (y0, y1) = minmax(ys);
    let (z0, z1) = minmax(zs);
    let center = [(x0 + x1) / 2.0, (y0 + y1) / 2.0, (z0 + z1) / 2.0];
    let half = [
        ((x1 - x0) / 2.0).max(1e-6),
        ((y1 - y0) / 2.0).max(1e-6),
        ((z1 - z0) / 2.0).max(1e-6),
    ];
    (center, half)
}

/// Axis-aligned bounding box of a point set: `(center, half_extents)`.
pub fn bounding_box(xs: &[f64], ys: &[f64], zs: &[f64]) -> ([f64; 3], [f64; 3]) {
    let minmax = |v: &[f64]| {
        let lo = v.iter().cloned().fold(f64::INFINITY, f64::min);
        let hi = v.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
        (lo, hi)
    };
    let (x0, x1) = minmax(xs);
    let (y0, y1) = minmax(ys);
    let (z0, z1) = minmax(zs);
    let center = [(x0 + x1) / 2.0, (y0 + y1) / 2.0, (z0 + z1) / 2.0];
    let half = [
        ((x1 - x0) / 2.0).max(1e-6),
        ((y1 - y0) / 2.0).max(1e-6),
        ((z1 - z0) / 2.0).max(1e-6),
    ];
    (center, half)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bounding_box_of_unit_cube() {
        let xs = [0.0, 1.0];
        let ys = [2.0, 4.0];
        let zs = [1.0, 1.0];
        let (c, h) = bounding_box(&xs, &ys, &zs);
        assert_eq!(c, [0.5, 3.0, 1.0]);
        assert!((h[0] - 0.5).abs() < 1e-12);
        assert!((h[1] - 1.0).abs() < 1e-12);
        assert!(h[2] >= 1e-6, "degenerate axis gets a floor");
    }

    #[test]
    fn region_indexing_matches_flow_region_order() {
        let ly = 8.0;
        assert_eq!(region_of(4.0, ly, 0.05), 0);
        assert_eq!(region_of(0.4, ly, 0.05), 1);
        assert_eq!(region_of(2.0, ly, 0.05), 2);
    }
}
