//! The synthetic no-op consumer of §IV-B.
//!
//! *"…streams its particle data into a synthetic no-op consumer that
//! performs no computation beside measuring the performance of this I/O
//! operation and only discards received data."* Used by the streaming
//! scaling study (Fig. 6): fetch everything, time it, drop it.

use as_staging::engine::SstReader;

/// Measurements of a no-op drain.
#[derive(Debug, Clone)]
pub struct NoopReport {
    /// Steps consumed.
    pub steps: u64,
    /// Total bytes fetched.
    pub bytes: u64,
    /// Wall seconds per step (fetch time only).
    pub step_seconds: Vec<f64>,
    /// Simulated wire seconds per step (data-plane model).
    pub simulated_seconds: Vec<f64>,
}

impl NoopReport {
    /// Mean measured throughput, bytes/second.
    pub fn mean_throughput(&self) -> f64 {
        let t: f64 = self.step_seconds.iter().sum();
        if t > 0.0 {
            self.bytes as f64 / t
        } else {
            0.0
        }
    }

    /// Mean modelled throughput using the data-plane wire time.
    pub fn simulated_throughput(&self) -> f64 {
        let t: f64 = self.simulated_seconds.iter().sum();
        if t > 0.0 {
            self.bytes as f64 / t
        } else {
            0.0
        }
    }
}

/// Drain a stream to completion, fetching every variable of every step.
pub fn run_noop_consumer(mut reader: SstReader) -> NoopReport {
    let mut report = NoopReport {
        steps: 0,
        bytes: 0,
        step_seconds: Vec::new(),
        simulated_seconds: Vec::new(),
    };
    while let Some(mut step) = reader.begin_step() {
        let t0 = std::time::Instant::now();
        for name in step.variable_names() {
            if name == "__attributes__" {
                continue;
            }
            let var = step
                .variable(&name)
                .unwrap_or_else(|| panic!("variable_names listed {name}"))
                .clone();
            match var.dtype {
                as_staging::variable::Dtype::F64 => {
                    let v = step.get_f64(&name);
                    std::hint::black_box(&v);
                }
                as_staging::variable::Dtype::F32 => {
                    let v = step.get_f32(&name);
                    std::hint::black_box(&v);
                }
                _ => {}
            }
        }
        report.step_seconds.push(t0.elapsed().as_secs_f64());
        report.simulated_seconds.push(step.simulated_seconds);
        report.bytes += step.bytes_fetched;
        report.steps += 1;
        reader.end_step(step);
    }
    report
}

#[cfg(test)]
mod tests {
    use super::*;
    use as_staging::engine::{open_stream, StreamConfig};

    #[test]
    fn noop_drains_and_measures() {
        let (mut writers, mut readers) = open_stream(StreamConfig::default());
        let mut w = writers.remove(0);
        let producer = std::thread::spawn(move || {
            for s in 0..5 {
                w.begin_step();
                w.put_f64("particles/e/position/x", 1000, 0, &vec![s as f64; 1000]);
                w.end_step();
            }
            w.close();
        });
        let report = run_noop_consumer(readers.remove(0));
        producer.join().unwrap();
        assert_eq!(report.steps, 5);
        assert_eq!(report.bytes, 5 * 8000);
        assert_eq!(report.step_seconds.len(), 5);
        assert!(report.mean_throughput() > 0.0);
        assert!(report.simulated_throughput() > 0.0);
    }
}
