//! The Artificial Scientist: orchestration of the loosely-coupled
//! in-transit workflow.
//!
//! The paper's pipeline (§III-B), reproduced end to end:
//!
//! ```text
//!  PIConGPU-like PIC sim ──(openPMD particles)──┐
//!        │ radiation plugin                     ├─► SST staging ─► MLapp
//!        └───────(openPMD radiation)────────────┘      (in-memory,      │
//!                                                      back-pressured)  ▼
//!                                              training buffer (now/EP) ─► VAE+INN
//! ```
//!
//! - [`producer`] runs the KHI simulation with the in-situ radiation
//!   plugin and streams particle phase space + per-region radiation
//!   amplitudes through two parallel openPMD streams (the paper: "two
//!   parallel data streams are opened between PIConGPU and the MLapp");
//! - [`consumer`] receives both streams, encodes sub-volume point clouds
//!   and log-spectra, feeds the experience-replay buffer and trains the
//!   VAE+INN `n_rep` iterations per streamed step;
//! - [`noop`] is the synthetic no-op consumer of §IV-B used for the
//!   streaming scaling study (it only measures and discards);
//! - [`workflow`] wires M producer ranks and K consumer ranks together
//!   under a placement policy (intra-node vs inter-node, Fig. 3(c)) and
//!   runs the whole thing with zero filesystem involvement: producers are
//!   slab shards of one distributed KHI box publishing on a shared
//!   multi-writer stream pair, consumers train data-parallel with
//!   gradients averaged every iteration (`WorkflowConfig::{producers,
//!   consumers}`; `1×1` is the exact legacy single-thread-each path).

pub mod config;
pub mod consumer;
pub mod encode;
pub mod eval;
pub mod noop;
pub mod producer;
pub mod workflow;

pub use config::{Placement, WorkflowConfig};
pub use encode::{EncodeConfig, Sample};
pub use eval::InversionEval;
pub use workflow::{run_workflow, ConsumerSummary, WorkflowReport};

pub mod prelude {
    //! Common imports for workflow consumers.
    pub use crate::config::{Placement, WorkflowConfig};
    pub use crate::encode::{EncodeConfig, Sample};
    pub use crate::eval::InversionEval;
    pub use crate::workflow::{run_workflow, ConsumerSummary, WorkflowReport};
}
