//! The Artificial Scientist: orchestration of the loosely-coupled
//! in-transit workflow.
//!
//! The paper's pipeline (§III-B), reproduced end to end:
//!
//! ```text
//!  PIConGPU-like PIC sim ──(openPMD particles)──┐
//!        │ radiation plugin                     ├─► SST staging ─► MLapp
//!        └───────(openPMD radiation)────────────┘      (in-memory,      │
//!                                                      back-pressured)  ▼
//!                                              training buffer (now/EP) ─► VAE+INN
//! ```
//!
//! - [`producer`] runs the KHI simulation with the in-situ radiation
//!   plugin and streams particle phase space + per-region radiation
//!   amplitudes through two parallel openPMD streams (the paper: "two
//!   parallel data streams are opened between PIConGPU and the MLapp");
//! - [`consumer`] receives both streams, encodes sub-volume point clouds
//!   and log-spectra, feeds the experience-replay buffer and trains the
//!   VAE+INN `n_rep` iterations per streamed step;
//! - [`noop`] is the synthetic no-op consumer of §IV-B used for the
//!   streaming scaling study (it only measures and discards);
//! - [`workflow`] wires M producer ranks and K consumer ranks together
//!   under a placement policy (intra-node vs inter-node, Fig. 3(c)) and
//!   runs the whole thing with zero filesystem involvement: producers are
//!   slab shards of one distributed KHI box publishing on a shared
//!   multi-writer stream pair, consumers train data-parallel with
//!   gradients averaged every iteration (`WorkflowConfig::{producers,
//!   consumers}`; `1×1` is the exact legacy single-thread-each path).
//!
//! # Streaming contracts
//!
//! The producer/consumer coupling rests on three invariants:
//!
//! - **SST step lifecycle** (`as-staging`): a published window stays
//!   alive until *every* reader rank closes it; the bounded queue
//!   back-pressures the producers, whose queue-blocked time is reported
//!   honestly in `ProducerReport::stall_seconds`.
//! - **Window ownership**: every consumer rank sees every window, but
//!   exactly one (round-robin, `window % K`) fetches and encodes it.
//!   How ranks pace themselves is the [`config::ConsumerPolicy`]:
//!   [`config::ConsumerPolicy::BlockingEveryStep`] consumes in order,
//!   [`config::ConsumerPolicy::DropSteps`] always takes the freshest
//!   window and counts the skipped ones — per rank,
//!   `windows + dropped + orphaned + lost == published`, always (`lost`
//!   counts windows destroyed by injected faults: checkpoint rollback,
//!   skip events, rank death — zero on a healthy run). With
//!   `WorkflowConfig::sample_broadcast` the owner shares its encoded
//!   samples with every peer rank.
//! - **DDP invariant**: synchronous training with bucketed gradient
//!   all-reduce (`as_nn::ddp::sync_gradients_bucketed`, or its
//!   non-blocking comm-worker twin `as_nn::ddp::OverlappedGradSync`
//!   under [`config::WorkflowConfig::overlap_grad_sync`]) keeps learner
//!   parameters bit-identical across ranks; a `param_hash` allgather
//!   asserts it every iteration.
//!
//! # Communication layer
//!
//! Every inter-rank exchange goes through the
//! `as_cluster::collective::Collective` trait; the transport is the
//! [`config::CommBackend`] knob (in-process channels vs the
//! netsim-delayed fabric model), constructed only inside
//! [`workflow::run_workflow`]. Backend swaps are pure timing changes —
//! `tests/comm_backends.rs` asserts bit-identical `param_hash`
//! sequences — and per-group collective traffic is surfaced as
//! `WorkflowReport::{producer_comm_bytes, consumer_comm_bytes}`.

pub mod checkpoint;
pub mod config;
pub mod consumer;
pub mod encode;
pub mod eval;
pub mod faults;
pub mod ft;
pub mod noop;
pub mod producer;
pub mod snapshot;
pub mod workflow;

pub use checkpoint::{LearnerCheckpoint, LearnerProgress};
pub use config::{CommBackend, ConsumerPolicy, Placement, ServingConfig, WorkflowConfig};
pub use encode::{EncodeConfig, Sample};
pub use eval::InversionEval;
pub use faults::{FaultEvent, FaultPlan, InjectedFault, KillMode, StreamId};
pub use ft::FtComm;
pub use snapshot::{ModelSnapshot, SnapshotPublisher, SnapshotSink};
pub use workflow::{
    run_workflow, run_workflow_with_sink, ConsumerSummary, RankFailure, RankGroup, WorkflowReport,
};

pub mod prelude {
    //! Common imports for workflow consumers.
    pub use crate::checkpoint::{LearnerCheckpoint, LearnerProgress};
    pub use crate::config::{
        CommBackend, ConsumerPolicy, Placement, ServingConfig, WorkflowConfig,
    };
    pub use crate::encode::{EncodeConfig, Sample};
    pub use crate::eval::InversionEval;
    pub use crate::faults::{FaultEvent, FaultPlan, InjectedFault, KillMode, StreamId};
    pub use crate::snapshot::{ModelSnapshot, SnapshotPublisher, SnapshotSink};
    pub use crate::workflow::{
        run_workflow, run_workflow_with_sink, ConsumerSummary, RankFailure, RankGroup,
        WorkflowReport,
    };
}
