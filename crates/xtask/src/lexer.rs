//! Lexical pre-processing for the lint pass.
//!
//! [`strip`] replaces comments, string literals, and char literals with
//! spaces so needle matching cannot fire inside them; newlines are kept
//! so reported line numbers match the original file. [`blank_test_items`]
//! additionally blanks `#[cfg(test)]` items, because every lint rule
//! governs non-test code only.

fn is_ident(b: u8) -> bool {
    b.is_ascii_alphanumeric() || b == b'_'
}

/// Push `n` bytes of blanks for `src[i..i+n]`, preserving newlines.
fn push_blank(out: &mut Vec<u8>, src: &[u8], i: usize, n: usize) {
    for &b in &src[i..(i + n).min(src.len())] {
        out.push(if b == b'\n' { b'\n' } else { b' ' });
    }
}

/// Replace comments, string/char literals with spaces, preserving line
/// structure. Raw strings (`r"…"`, `r#"…"#`) and nested block comments
/// are handled; lifetimes (`'a`) are left intact.
pub fn strip(src: &str) -> String {
    let b = src.as_bytes();
    let mut out: Vec<u8> = Vec::with_capacity(b.len());
    let mut i = 0;
    while i < b.len() {
        match b[i] {
            b'/' if b.get(i + 1) == Some(&b'/') => {
                while i < b.len() && b[i] != b'\n' {
                    out.push(b' ');
                    i += 1;
                }
            }
            b'/' if b.get(i + 1) == Some(&b'*') => {
                let mut depth = 1usize;
                push_blank(&mut out, b, i, 2);
                i += 2;
                while i < b.len() && depth > 0 {
                    if b[i] == b'/' && b.get(i + 1) == Some(&b'*') {
                        depth += 1;
                        push_blank(&mut out, b, i, 2);
                        i += 2;
                    } else if b[i] == b'*' && b.get(i + 1) == Some(&b'/') {
                        depth -= 1;
                        push_blank(&mut out, b, i, 2);
                        i += 2;
                    } else {
                        push_blank(&mut out, b, i, 1);
                        i += 1;
                    }
                }
            }
            b'r' if (i == 0 || !is_ident(b[i - 1])) && raw_string_hashes(b, i).is_some() => {
                let hashes = raw_string_hashes(b, i).unwrap_or(0);
                // r + hashes + opening quote
                let start = i;
                i += 1 + hashes + 1;
                // Scan for closing quote followed by `hashes` '#'s.
                while i < b.len() {
                    if b[i] == b'"'
                        && b[i + 1..]
                            .iter()
                            .take(hashes)
                            .filter(|&&c| c == b'#')
                            .count()
                            == hashes
                    {
                        i += 1 + hashes;
                        break;
                    }
                    i += 1;
                }
                push_blank(&mut out, b, start, i - start);
            }
            b'"' => {
                let start = i;
                i += 1;
                while i < b.len() {
                    if b[i] == b'\\' {
                        i += 2;
                    } else if b[i] == b'"' {
                        i += 1;
                        break;
                    } else {
                        i += 1;
                    }
                }
                push_blank(&mut out, b, start, i - start);
            }
            b'\'' => {
                // Char literal vs lifetime.
                if b.get(i + 1) == Some(&b'\\') {
                    // Escaped char literal: '\n', '\'', '\u{1F600}'.
                    let start = i;
                    let mut j = i + 2;
                    if b.get(j) == Some(&b'u') {
                        while j < b.len() && b[j] != b'}' {
                            j += 1;
                        }
                    }
                    j += 1; // past escape payload
                    if b.get(j) == Some(&b'\'') {
                        j += 1;
                    }
                    push_blank(&mut out, b, start, j - start);
                    i = j;
                } else if b.get(i + 2) == Some(&b'\'') {
                    // Plain char literal: 'a'.
                    push_blank(&mut out, b, i, 3);
                    i += 3;
                } else {
                    // Lifetime: leave as-is.
                    out.push(b'\'');
                    i += 1;
                }
            }
            c => {
                out.push(c);
                i += 1;
            }
        }
    }
    String::from_utf8(out).unwrap_or_default()
}

/// If `b[i..]` begins a raw string literal (`r"`, `r#"`, `r##"`, …),
/// return the number of '#'s; `None` otherwise (covers raw identifiers
/// like `r#type`).
fn raw_string_hashes(b: &[u8], i: usize) -> Option<usize> {
    let mut j = i + 1;
    let mut hashes = 0usize;
    while b.get(j) == Some(&b'#') {
        hashes += 1;
        j += 1;
    }
    if b.get(j) == Some(&b'"') {
        Some(hashes)
    } else {
        None
    }
}

/// Blank every `#[cfg(test)]` item (module, fn, impl, use, …) in
/// already-stripped source. Items ending in `;` before any `{` are
/// blanked through the `;`; otherwise through the matching close brace
/// of the first `{`.
pub fn blank_test_items(stripped: &str) -> String {
    const ATTR: &str = "#[cfg(test)]";
    let mut b = stripped.as_bytes().to_vec();
    let mut from = 0usize;
    while let Some(rel) = find_from(&b, ATTR.as_bytes(), from) {
        let start = rel;
        let mut i = start + ATTR.len();
        // Scan forward to the item terminator.
        let mut end = b.len();
        while i < b.len() {
            match b[i] {
                b';' => {
                    end = i + 1;
                    break;
                }
                b'{' => {
                    let mut depth = 1usize;
                    i += 1;
                    while i < b.len() && depth > 0 {
                        match b[i] {
                            b'{' => depth += 1,
                            b'}' => depth -= 1,
                            _ => {}
                        }
                        i += 1;
                    }
                    end = i;
                    break;
                }
                _ => i += 1,
            }
        }
        for c in &mut b[start..end] {
            if *c != b'\n' {
                *c = b' ';
            }
        }
        from = end.max(start + 1);
    }
    String::from_utf8(b).unwrap_or_default()
}

fn find_from(hay: &[u8], needle: &[u8], from: usize) -> Option<usize> {
    if from >= hay.len() || needle.is_empty() {
        return None;
    }
    hay[from..]
        .windows(needle.len())
        .position(|w| w == needle)
        .map(|p| p + from)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn strips_line_and_block_comments() {
        let s = strip("let a = 1; // HashMap\n/* HashSet */ let b = 2;\n");
        assert!(!s.contains("HashMap"));
        assert!(!s.contains("HashSet"));
        assert!(s.contains("let a = 1;"));
        assert!(s.contains("let b = 2;"));
        assert_eq!(s.matches('\n').count(), 2);
    }

    #[test]
    fn strips_nested_block_comments() {
        let s = strip("/* outer /* HashMap */ still */ let x = 3;");
        assert!(!s.contains("HashMap"));
        assert!(s.contains("let x = 3;"));
    }

    #[test]
    fn strips_strings_and_chars_keeps_lifetimes() {
        let s = strip("let s = \"HashMap\"; let c = '\\n'; fn f<'a>(x: &'a str) {}");
        assert!(!s.contains("HashMap"));
        assert!(s.contains("<'a>"));
        assert!(s.contains("&'a str"));
    }

    #[test]
    fn strips_raw_strings() {
        let s = strip("let s = r#\"HashMap \" inner\"#; let t = 1;");
        assert!(!s.contains("HashMap"));
        assert!(s.contains("let t = 1;"));
    }

    #[test]
    fn blanks_cfg_test_modules_and_items() {
        let src = "fn live() { a.unwrap(); }\n\
                   #[cfg(test)]\nmod tests {\n    fn t() { b.unwrap(); }\n}\n\
                   #[cfg(test)]\nuse std::thread;\n\
                   fn live2() {}\n";
        let out = blank_test_items(&strip(src));
        assert!(out.contains("a.unwrap()"));
        assert!(!out.contains("b.unwrap()"));
        assert!(!out.contains("std::thread"));
        assert!(out.contains("fn live2"));
        assert_eq!(out.matches('\n').count(), src.matches('\n').count());
    }
}
