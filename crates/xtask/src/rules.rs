//! The four lint rules.
//!
//! All rules operate on *pre-processed* source (comments/strings blanked,
//! `#[cfg(test)]` items removed — see [`crate::lexer`]), so needles never
//! fire inside comments, string literals, or test code.
//!
//! | rule | invariant |
//! |------|-----------|
//! | `hash-collections`    | no `HashMap`/`HashSet` outside the shims — iteration order leaks into collectives, telemetry, and serialized specs |
//! | `hot-path-unwrap`     | no `.unwrap()`/`.expect(` in staging/cluster/core — hot paths return typed `StagingError`/`CommError` |
//! | `raw-sync`            | no `std::thread::spawn` / raw `std::sync` primitives outside the shims and `core::workflow` — everything must go through the instrumented shims |
//! | `unordered-par-reduce`| no `.sum()`/`.product()`/`.reduce()` at the top level of a rayon parallel-iterator chain — float reduction order must not depend on the split |

/// One lint hit: rule id, repo-relative path, 1-based line, and the
/// original source line text (for reporting and allowlist matching).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Violation {
    pub rule: &'static str,
    pub path: String,
    pub line: usize,
    pub text: String,
}

pub const RULE_HASH: &str = "hash-collections";
pub const RULE_UNWRAP: &str = "hot-path-unwrap";
pub const RULE_SYNC: &str = "raw-sync";
pub const RULE_REDUCE: &str = "unordered-par-reduce";

fn is_ident(b: u8) -> bool {
    b.is_ascii_alphanumeric() || b == b'_'
}

/// Byte offsets of `needle` in `hay` with identifier-boundary checks on
/// whichever ends of the needle are identifier characters (so `Once`
/// does not match inside `OnceLock`, and `par_chunks` does not match
/// inside `par_chunks_mut`).
fn find_bounded(hay: &str, needle: &str) -> Vec<usize> {
    let h = hay.as_bytes();
    let n = needle.as_bytes();
    let check_start = n.first().copied().is_some_and(is_ident);
    let check_end = n.last().copied().is_some_and(is_ident);
    let mut out = Vec::new();
    if n.is_empty() || h.len() < n.len() {
        return out;
    }
    for p in 0..=h.len() - n.len() {
        if &h[p..p + n.len()] != n {
            continue;
        }
        if check_start && p > 0 && is_ident(h[p - 1]) {
            continue;
        }
        if check_end && p + n.len() < h.len() && is_ident(h[p + n.len()]) {
            continue;
        }
        out.push(p);
    }
    out
}

fn line_of(src: &str, offset: usize) -> usize {
    src.as_bytes()[..offset]
        .iter()
        .filter(|&&b| b == b'\n')
        .count()
        + 1
}

fn line_text(original: &str, line: usize) -> String {
    original
        .lines()
        .nth(line - 1)
        .unwrap_or("")
        .trim()
        .to_string()
}

fn push(
    out: &mut Vec<Violation>,
    rule: &'static str,
    path: &str,
    original: &str,
    stripped: &str,
    offset: usize,
) {
    let line = line_of(stripped, offset);
    out.push(Violation {
        rule,
        path: path.to_string(),
        line,
        text: line_text(original, line),
    });
}

/// `hash-collections`: any mention of `HashMap`/`HashSet`.
pub fn hash_collections(path: &str, original: &str, stripped: &str) -> Vec<Violation> {
    let mut out = Vec::new();
    for needle in ["HashMap", "HashSet"] {
        for off in find_bounded(stripped, needle) {
            push(&mut out, RULE_HASH, path, original, stripped, off);
        }
    }
    out
}

/// `hot-path-unwrap`: `.unwrap()` / `.expect(` calls.
pub fn hot_path_unwrap(path: &str, original: &str, stripped: &str) -> Vec<Violation> {
    let mut out = Vec::new();
    for needle in [".unwrap()", ".expect("] {
        for off in find_bounded(stripped, needle) {
            push(&mut out, RULE_UNWRAP, path, original, stripped, off);
        }
    }
    out
}

/// `raw-sync`: `std::thread::spawn`, `use std::thread`, and
/// `std::sync::{Mutex,RwLock,Condvar,Barrier,mpsc,Once}`. Atomics,
/// `Arc`, and `OnceLock` stay allowed.
pub fn raw_sync(path: &str, original: &str, stripped: &str) -> Vec<Violation> {
    const BANNED_SYNC: &[&str] = &["Mutex", "RwLock", "Condvar", "Barrier", "mpsc", "Once"];
    let mut out = Vec::new();
    let mut offset = 0usize;
    for line in stripped.lines() {
        let hit = line.contains("std::thread::spawn")
            || line.contains("use std::thread")
            || (line.contains("std::sync::")
                && BANNED_SYNC
                    .iter()
                    .any(|n| !find_bounded(line, n).is_empty()));
        if hit {
            push(&mut out, RULE_SYNC, path, original, stripped, offset);
        }
        offset += line.len() + 1;
    }
    out
}

/// `unordered-par-reduce`: a `.sum(`/`.product(`/`.reduce(` applied at
/// the top level of a statement that contains a rayon parallel-iterator
/// marker. Sequential reductions *inside* the parallel closure (the
/// sanctioned fixed-chunk pattern) sit at bracket depth ≥ 1 and are not
/// flagged.
pub fn unordered_par_reduce(path: &str, original: &str, stripped: &str) -> Vec<Violation> {
    const MARKERS: &[&str] = &[
        "par_iter",
        "par_iter_mut",
        "into_par_iter",
        "par_bridge",
        "par_chunks",
        "par_chunks_mut",
        "par_chunks_exact",
    ];
    const REDUCERS: &[&str] = &[".sum(", ".sum::", ".product(", ".product::", ".reduce("];
    let mut out = Vec::new();
    let mut starts: Vec<usize> = Vec::new();
    for m in MARKERS {
        for off in find_bounded(stripped, m) {
            starts.push(off + m.len());
        }
    }
    starts.sort_unstable();
    let bytes = stripped.as_bytes();
    for start in starts {
        let mut depth = 0i32;
        let mut i = start;
        while i < bytes.len() {
            match bytes[i] {
                b'(' | b'[' | b'{' => depth += 1,
                b')' | b']' | b'}' => {
                    depth -= 1;
                    if depth < 0 {
                        break;
                    }
                }
                b';' if depth == 0 => break,
                b'.' if depth == 0 => {
                    let rest = &stripped[i..];
                    if REDUCERS.iter().any(|r| rest.starts_with(r)) {
                        push(&mut out, RULE_REDUCE, path, original, stripped, i);
                    }
                }
                _ => {}
            }
            i += 1;
        }
    }
    out.sort_by_key(|v| v.line);
    out.dedup();
    out
}

/// Run every rule whose scope covers `path` (repo-relative).
pub fn run_all(path: &str, original: &str) -> Vec<Violation> {
    let stripped = crate::lexer::blank_test_items(&crate::lexer::strip(original));
    let mut out = Vec::new();
    if in_scope_hash(path) {
        out.extend(hash_collections(path, original, &stripped));
    }
    if in_scope_unwrap(path) {
        out.extend(hot_path_unwrap(path, original, &stripped));
    }
    if in_scope_sync(path) {
        out.extend(raw_sync(path, original, &stripped));
    }
    if in_scope_reduce(path) {
        out.extend(unordered_par_reduce(path, original, &stripped));
    }
    out
}

fn is_tooling(path: &str) -> bool {
    path.starts_with("crates/shims/")
        || path.starts_with("crates/xtask/")
        || path.starts_with("crates/detect/")
}

fn in_scope_hash(path: &str) -> bool {
    !is_tooling(path)
}

fn in_scope_unwrap(path: &str) -> bool {
    path.starts_with("crates/staging/src")
        || path.starts_with("crates/cluster/src")
        || path.starts_with("crates/core/src")
}

fn in_scope_sync(path: &str) -> bool {
    !is_tooling(path) && path != "crates/core/src/workflow.rs"
}

fn in_scope_reduce(path: &str) -> bool {
    !is_tooling(path)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn prep(src: &str) -> String {
        crate::lexer::blank_test_items(&crate::lexer::strip(src))
    }

    // -- known-bad fixtures: each rule fires exactly once --

    #[test]
    fn fixture_hash_collections_fires_once() {
        let bad = "use std::collections::HashMap;\nfn f() { let m: BTreeMap<u8, u8> = BTreeMap::new(); }\n";
        let v = hash_collections("crates/core/src/x.rs", bad, &prep(bad));
        assert_eq!(v.len(), 1, "{v:?}");
        assert_eq!(v[0].line, 1);
        assert_eq!(v[0].rule, RULE_HASH);
    }

    #[test]
    fn fixture_hot_path_unwrap_fires_once() {
        let bad = "fn f(x: Option<u8>) -> u8 {\n    x.unwrap()\n}\nfn g(x: Option<u8>) -> u8 { x.unwrap_or(0) }\n";
        let v = hot_path_unwrap("crates/staging/src/x.rs", bad, &prep(bad));
        assert_eq!(v.len(), 1, "{v:?}");
        assert_eq!(v[0].line, 2);
        assert_eq!(v[0].rule, RULE_UNWRAP);
    }

    #[test]
    fn fixture_raw_sync_fires_once() {
        let bad = "use std::sync::{Arc, Mutex};\nuse std::sync::atomic::AtomicU64;\nuse std::sync::OnceLock;\nfn f() { let _ = parking_lot::Mutex::new(0); }\n";
        let v = raw_sync("crates/nn/src/x.rs", bad, &prep(bad));
        assert_eq!(v.len(), 1, "{v:?}");
        assert_eq!(v[0].line, 1);
        assert_eq!(v[0].rule, RULE_SYNC);
    }

    #[test]
    fn fixture_raw_thread_spawn_fires() {
        let bad = "fn f() { let h = std::thread::spawn(|| 1); h.join().ok(); }\n";
        let v = raw_sync("crates/nn/src/x.rs", bad, &prep(bad));
        assert_eq!(v.len(), 1, "{v:?}");
    }

    #[test]
    fn fixture_unordered_par_reduce_fires_once() {
        let bad = "fn f(v: &[f32]) -> f32 {\n    v.par_iter().map(|x| x * x).sum::<f32>()\n}\n\
                   fn ok(v: &[f32]) -> Vec<f32> {\n    v.par_chunks(64).map(|c| c.iter().sum::<f32>()).collect()\n}\n";
        let v = unordered_par_reduce("crates/pic/src/x.rs", bad, &prep(bad));
        assert_eq!(v.len(), 1, "{v:?}");
        assert_eq!(v[0].line, 2);
        assert_eq!(v[0].rule, RULE_REDUCE);
    }

    // -- negative space: stripped regions and scopes --

    #[test]
    fn needles_in_comments_strings_tests_do_not_fire() {
        let src = "// HashMap in a comment\nconst S: &str = \"std::sync::Mutex\";\n\
                   #[cfg(test)]\nmod tests {\n    fn t(x: Option<u8>) { x.unwrap(); }\n}\n";
        let stripped = prep(src);
        assert!(hash_collections("crates/core/src/x.rs", src, &stripped).is_empty());
        assert!(raw_sync("crates/core/src/x.rs", src, &stripped).is_empty());
        assert!(hot_path_unwrap("crates/core/src/x.rs", src, &stripped).is_empty());
    }

    #[test]
    fn once_needle_has_ident_boundaries() {
        let src = "use std::sync::OnceLock;\nstatic X: OnceLock<u8> = OnceLock::new();\n";
        assert!(raw_sync("crates/core/src/x.rs", src, &prep(src)).is_empty());
    }

    #[test]
    fn reduce_across_multiline_chain_fires() {
        let src = "fn f(v: &[f64]) -> f64 {\n    v.par_iter()\n        .map(|x| x + 1.0)\n        .reduce(|| 0.0, |a, b| a + b)\n}\n";
        let v = unordered_par_reduce("crates/pic/src/x.rs", src, &prep(src));
        assert_eq!(v.len(), 1, "{v:?}");
        assert_eq!(v[0].line, 4);
    }

    #[test]
    fn scopes() {
        assert!(in_scope_unwrap("crates/staging/src/engine.rs"));
        assert!(!in_scope_unwrap("crates/pic/src/tile.rs"));
        assert!(!in_scope_sync("crates/core/src/workflow.rs"));
        assert!(!in_scope_sync("crates/shims/rayon/src/lib.rs"));
        assert!(in_scope_sync("crates/bench/src/bin/fig_faults.rs"));
        assert!(in_scope_hash("src/lib.rs"));
    }
}
