//! Committed lint suppressions.
//!
//! `lint-allowlist.txt` at the repo root holds one entry per line:
//!
//! ```text
//! rule | path-suffix | needle | justification
//! ```
//!
//! An entry suppresses a violation when the rule matches exactly, the
//! violation's repo-relative path ends with `path-suffix`, and `needle`
//! is a substring of the offending source line. Policy (enforced here):
//! every entry must carry a non-empty justification, and every entry
//! must suppress at least one current violation — stale suppressions
//! are errors, so the file can only shrink as code is fixed. CI adds a
//! line-count guard on top (see `.github/workflows/ci.yml`).

use crate::rules::Violation;

#[derive(Debug)]
pub struct Entry {
    pub rule: String,
    pub path: String,
    pub needle: String,
    pub line: usize,
}

/// Parse the allowlist text. Returns entries and per-line format errors.
pub fn parse(text: &str) -> (Vec<Entry>, Vec<String>) {
    let mut entries = Vec::new();
    let mut errors = Vec::new();
    for (idx, raw) in text.lines().enumerate() {
        let line = idx + 1;
        let trimmed = raw.trim();
        if trimmed.is_empty() || trimmed.starts_with('#') {
            continue;
        }
        let fields: Vec<&str> = trimmed.split('|').map(str::trim).collect();
        if fields.len() != 4 {
            errors.push(format!(
                "allowlist:{line}: expected `rule | path | needle | justification`, got {} field(s)",
                fields.len()
            ));
            continue;
        }
        if fields[3].is_empty() {
            errors.push(format!("allowlist:{line}: entry has no justification"));
            continue;
        }
        entries.push(Entry {
            rule: fields[0].to_string(),
            path: fields[1].to_string(),
            needle: fields[2].to_string(),
            line,
        });
    }
    (entries, errors)
}

impl Entry {
    fn matches(&self, v: &Violation) -> bool {
        v.rule == self.rule && v.path.ends_with(&self.path) && v.text.contains(&self.needle)
    }
}

/// Split violations into (remaining, suppressed-count) and report any
/// entry that suppressed nothing as an error.
pub fn apply(
    entries: &[Entry],
    violations: Vec<Violation>,
) -> (Vec<Violation>, usize, Vec<String>) {
    let mut used = vec![false; entries.len()];
    let mut remaining = Vec::new();
    let mut suppressed = 0usize;
    for v in violations {
        match entries.iter().position(|e| e.matches(&v)) {
            Some(i) => {
                used[i] = true;
                suppressed += 1;
            }
            None => remaining.push(v),
        }
    }
    let errors = entries
        .iter()
        .zip(&used)
        .filter(|(_, &u)| !u)
        .map(|(e, _)| {
            format!(
                "allowlist:{}: unused entry `{} | {} | {}` — remove it (suppressions may only shrink)",
                e.line, e.rule, e.path, e.needle
            )
        })
        .collect();
    (remaining, suppressed, errors)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rules::Violation;

    fn v(rule: &'static str, path: &str, text: &str) -> Violation {
        Violation {
            rule,
            path: path.to_string(),
            line: 1,
            text: text.to_string(),
        }
    }

    #[test]
    fn parses_and_rejects_bad_lines() {
        let (entries, errors) = parse(
            "# comment\n\n\
             hot-path-unwrap | cluster/src/comm.rs | broadcast value | root contract\n\
             hash-collections | core/src/x.rs | HashMap\n\
             raw-sync | a.rs | x | \n",
        );
        assert_eq!(entries.len(), 1);
        assert_eq!(errors.len(), 2, "{errors:?}");
    }

    #[test]
    fn suppresses_matching_and_flags_unused() {
        let (entries, _) = parse(
            "hot-path-unwrap | cluster/src/comm.rs | broadcast | root must supply\n\
             raw-sync | pic/src/tile.rs | Mutex | stale\n",
        );
        let vs = vec![
            v(
                "hot-path-unwrap",
                "crates/cluster/src/comm.rs",
                "value.expect(\"broadcast\")",
            ),
            v("hash-collections", "crates/core/src/faults.rs", "HashMap"),
        ];
        let (remaining, suppressed, errors) = apply(&entries, vs);
        assert_eq!(suppressed, 1);
        assert_eq!(remaining.len(), 1);
        assert_eq!(remaining[0].rule, "hash-collections");
        assert_eq!(errors.len(), 1, "{errors:?}");
        assert!(errors[0].contains("unused"));
    }
}
