//! `as-xtask` — dependency-free workspace correctness lints.
//!
//! Usage: `cargo run -p as-xtask -- lint [--root <dir>]`
//!
//! Lexically scans every non-shim `src/` file in the workspace and
//! enforces the four determinism/robustness invariants documented in
//! `docs/ARCHITECTURE.md` § Correctness tooling. Suppressions live in
//! `lint-allowlist.txt` at the repo root and must each carry a
//! justification and still match a live violation.

mod allowlist;
mod lexer;
mod rules;

use std::path::{Path, PathBuf};
use std::process::ExitCode;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut root: Option<PathBuf> = None;
    let mut cmd: Option<String> = None;
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--root" if i + 1 < args.len() => {
                root = Some(PathBuf::from(&args[i + 1]));
                i += 2;
            }
            c if cmd.is_none() => {
                cmd = Some(c.to_string());
                i += 1;
            }
            other => {
                eprintln!("unexpected argument: {other}");
                return usage();
            }
        }
    }
    match cmd.as_deref() {
        Some("lint") => lint(&root.unwrap_or_else(default_root)),
        _ => usage(),
    }
}

fn usage() -> ExitCode {
    eprintln!("usage: cargo run -p as-xtask -- lint [--root <workspace-dir>]");
    ExitCode::from(2)
}

/// Workspace root: two levels above this crate's manifest dir.
fn default_root() -> PathBuf {
    let manifest = PathBuf::from(env!("CARGO_MANIFEST_DIR"));
    manifest
        .parent()
        .and_then(Path::parent)
        .map(Path::to_path_buf)
        .unwrap_or_else(|| PathBuf::from("."))
}

fn lint(root: &Path) -> ExitCode {
    let files = collect_sources(root);
    if files.is_empty() {
        eprintln!("lint: no source files found under {}", root.display());
        return ExitCode::FAILURE;
    }

    let mut violations = Vec::new();
    for path in &files {
        let rel = repo_relative(root, path);
        let Ok(src) = std::fs::read_to_string(path) else {
            eprintln!("lint: unreadable file {}", path.display());
            return ExitCode::FAILURE;
        };
        violations.extend(rules::run_all(&rel, &src));
    }
    violations.sort_by(|a, b| (&a.path, a.line, a.rule).cmp(&(&b.path, b.line, b.rule)));

    let allow_path = root.join("lint-allowlist.txt");
    let allow_text = std::fs::read_to_string(&allow_path).unwrap_or_default();
    let (entries, mut errors) = allowlist::parse(&allow_text);
    let (remaining, suppressed, unused) = allowlist::apply(&entries, violations);
    errors.extend(unused);

    for v in &remaining {
        println!("{} {}:{}: {}", v.rule, v.path, v.line, v.text);
    }
    for e in &errors {
        println!("{e}");
    }
    if remaining.is_empty() && errors.is_empty() {
        println!(
            "lint: {} files clean ({} suppressed by allowlist)",
            files.len(),
            suppressed
        );
        ExitCode::SUCCESS
    } else {
        println!(
            "lint: {} violation(s), {} allowlist error(s) across {} files",
            remaining.len(),
            errors.len(),
            files.len()
        );
        ExitCode::FAILURE
    }
}

/// Every `.rs` under `src/` of each workspace crate (shims and tooling
/// excluded — rule scopes would skip them anyway) plus the root
/// package's `src/`.
fn collect_sources(root: &Path) -> Vec<PathBuf> {
    let mut out = Vec::new();
    let crates = root.join("crates");
    if let Ok(entries) = std::fs::read_dir(&crates) {
        let mut dirs: Vec<_> = entries.flatten().map(|e| e.path()).collect();
        dirs.sort();
        for dir in dirs {
            let name = dir.file_name().and_then(|n| n.to_str()).unwrap_or("");
            if name == "shims" || name == "xtask" || name == "detect" {
                continue;
            }
            walk_rs(&dir.join("src"), &mut out);
        }
    }
    walk_rs(&root.join("src"), &mut out);
    out
}

fn walk_rs(dir: &Path, out: &mut Vec<PathBuf>) {
    let Ok(entries) = std::fs::read_dir(dir) else {
        return;
    };
    let mut paths: Vec<_> = entries.flatten().map(|e| e.path()).collect();
    paths.sort();
    for p in paths {
        if p.is_dir() {
            walk_rs(&p, out);
        } else if p.extension().is_some_and(|e| e == "rs") {
            out.push(p);
        }
    }
}

fn repo_relative(root: &Path, path: &Path) -> String {
    path.strip_prefix(root)
        .unwrap_or(path)
        .to_string_lossy()
        .replace('\\', "/")
}
