//! The Fig. 9 workflow as a runnable example: train the Artificial
//! Scientist on a live KHI simulation with the **serving tier** armed —
//! the learner publishes versioned snapshots into an
//! [`artificial_scientist::serve::InferenceEngine`] while it trains —
//! then reconstruct local particle dynamics from observed radiation
//! spectra by *querying the engine* (batched, cached, hot-swapped
//! inference) instead of touching the model directly. Also renders the
//! vortex structure the network must learn to recognise (Fig. 1 style).
//!
//! Run with: `cargo run --release --example khi_inversion`

use artificial_scientist::core::config::{ServingConfig, WorkflowConfig};
use artificial_scientist::core::eval::InversionEval;
use artificial_scientist::pic::diag::density_map_xy;
use artificial_scientist::pic::plugin::Plugin;
use artificial_scientist::radiation::analytic::approach_recede_ratio;
use artificial_scientist::radiation::plugin::{RadiationPlugin, RegionMode};
use artificial_scientist::radiation::spectrum::Spectrum;
use artificial_scientist::serve::{run_workflow_serving, InferenceEngine};

fn main() {
    let mut cfg = WorkflowConfig::small();
    cfg.total_steps = 80;
    cfg.steps_per_sample = 4;
    cfg.n_rep = 10;
    // Publish a snapshot into the serving tier every 16 training
    // iterations; queries draw 8 posterior samples per spectrum.
    cfg.serving = Some(ServingConfig {
        publish_every: 16,
        posterior_samples: 8,
        ..ServingConfig::default()
    });

    println!("=== training in-transit on the live KHI (serving tier armed) ===");
    let engine = InferenceEngine::start(cfg.serving.clone().unwrap());
    let report = run_workflow_serving(&cfg, &engine);
    let serve = engine.report();
    println!(
        "streamed {} samples; loss {:.3} → {:.3}; published {} snapshots (serving v{})",
        report.consumer.samples,
        report
            .consumer
            .losses
            .first()
            .map(|l| l.total)
            .unwrap_or(f64::NAN),
        report.tail_loss(6),
        serve.swaps,
        serve.current_version,
    );

    // Ground-truth snapshot with fresh radiation for evaluation.
    let mut sim = cfg.khi.build(cfg.grid);
    let mut rad = RadiationPlugin::new(
        cfg.detector.clone(),
        RegionMode::FlowRegions {
            shear_width: cfg.shear_width,
        },
        0,
    );
    for s in 0..cfg.total_steps {
        sim.step();
        if s + cfg.steps_per_sample >= cfg.total_steps {
            rad.after_step(&sim);
        }
    }

    println!();
    println!("=== electron density (x–y, summed over z) — the KHI vortices ===");
    let map = density_map_xy(&sim);
    render_map(&map);

    println!();
    println!("=== inversion via the serving tier: spectrum → engine.query ===");
    // Encode each flow region's observed spectrum exactly as the
    // learner would, and ask the engine for the posterior summary. The
    // response carries the snapshot version that answered — the whole
    // answer comes from that one version, never torn weights.
    let labels = ["approaching bulk", "shear/vortex band", "receding bulk"];
    let spectra = rad.spectra();
    for (r, label) in labels.iter().enumerate() {
        let spec = Spectrum::new(
            cfg.detector.frequencies.clone(),
            spectra[r][0].intensity.clone(),
        );
        let encoded = cfg.encode.encode_spectrum(&spec, cfg.model.spectrum_dim);
        let resp = engine.query(encoded);
        // outputs = 6 per-channel means then 6 stds over the decoded
        // posterior cloud, channel order (x, y, z, p_x, p_y, p_z).
        println!(
            "{:<26} served v{} ({}) → posterior p_x {:+.3} ± {:.3}",
            label,
            resp.version,
            if resp.cached { "cached" } else { "computed" },
            resp.outputs[3],
            resp.outputs[9],
        );
    }

    println!();
    println!("=== inversion detail on the served snapshot ===");
    // The served model is the engine's current snapshot — the same
    // weights the queries above ran on, not the trainer's live copy.
    let served = engine
        .current()
        .expect("the learner published at least one snapshot");
    let eval = InversionEval::run(&cfg, &served.model, &sim, &rad, 48, (-1.0, 1.0), 21);
    for r in &eval.regions {
        println!(
            "{:<26} GT mean p_x {:+.3} ({} mode(s)) → ML mean {:+.3} ({} mode(s))",
            r.label,
            r.gt_hist.mean(),
            r.gt_hist.count_modes(0.35),
            r.pred_hist.mean(),
            r.pred_hist.count_modes(0.35)
        );
    }
    println!(
        "Doppler cutoff ratio (approaching/receding, analytic): {:.2}",
        approach_recede_ratio(cfg.khi.beta)
    );
    println!("spectrum MSE (encoded): {:.4}", eval.spectrum_mse());
    engine.shutdown();
}

fn render_map(map: &[Vec<f64>]) {
    let chars = b" .:-=+*#%@";
    let max = map
        .iter()
        .flatten()
        .cloned()
        .fold(0.0f64, f64::max)
        .max(1e-30);
    // Transpose so y runs vertically.
    let ny = map[0].len();
    for j in (0..ny).rev() {
        let row: String = map
            .iter()
            .map(|col| chars[((col[j] / max) * 9.0) as usize % 10] as char)
            .collect();
        println!("  |{row}|");
    }
}
