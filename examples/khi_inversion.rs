//! The Fig. 9 workflow as a runnable example: train the Artificial
//! Scientist on a live KHI simulation, then reconstruct local particle
//! dynamics from observed radiation spectra — and render the vortex
//! structure the network must learn to recognise (Fig. 1 style).
//!
//! Run with: `cargo run --release --example khi_inversion`

use artificial_scientist::core::config::WorkflowConfig;
use artificial_scientist::core::eval::InversionEval;
use artificial_scientist::core::workflow::run_workflow;
use artificial_scientist::pic::diag::density_map_xy;
use artificial_scientist::pic::plugin::Plugin;
use artificial_scientist::radiation::analytic::approach_recede_ratio;
use artificial_scientist::radiation::plugin::{RadiationPlugin, RegionMode};

fn main() {
    let mut cfg = WorkflowConfig::small();
    cfg.total_steps = 80;
    cfg.steps_per_sample = 4;
    cfg.n_rep = 10;

    println!("=== training in-transit on the live KHI ===");
    let report = run_workflow(&cfg);
    println!(
        "streamed {} samples; loss {:.3} → {:.3}",
        report.consumer.samples,
        report
            .consumer
            .losses
            .first()
            .map(|l| l.total)
            .unwrap_or(f64::NAN),
        report.tail_loss(6)
    );

    // Ground-truth snapshot with fresh radiation for evaluation.
    let mut sim = cfg.khi.build(cfg.grid);
    let mut rad = RadiationPlugin::new(
        cfg.detector.clone(),
        RegionMode::FlowRegions {
            shear_width: cfg.shear_width,
        },
        0,
    );
    for s in 0..cfg.total_steps {
        sim.step();
        if s + cfg.steps_per_sample >= cfg.total_steps {
            rad.after_step(&sim);
        }
    }

    println!();
    println!("=== electron density (x–y, summed over z) — the KHI vortices ===");
    let map = density_map_xy(&sim);
    render_map(&map);

    println!();
    println!("=== inversion: radiation → momentum distribution ===");
    let eval = InversionEval::run(
        &cfg,
        &report.consumer.model,
        &sim,
        &rad,
        48,
        (-1.0, 1.0),
        21,
    );
    for r in &eval.regions {
        println!(
            "{:<26} GT mean p_x {:+.3} ({} mode(s)) → ML mean {:+.3} ({} mode(s))",
            r.label,
            r.gt_hist.mean(),
            r.gt_hist.count_modes(0.35),
            r.pred_hist.mean(),
            r.pred_hist.count_modes(0.35)
        );
    }
    println!(
        "Doppler cutoff ratio (approaching/receding, analytic): {:.2}",
        approach_recede_ratio(cfg.khi.beta)
    );
    println!("spectrum MSE (encoded): {:.4}", eval.spectrum_mse());
}

fn render_map(map: &[Vec<f64>]) {
    let chars = b" .:-=+*#%@";
    let max = map
        .iter()
        .flatten()
        .cloned()
        .fold(0.0f64, f64::max)
        .max(1e-30);
    // Transpose so y runs vertically.
    let ny = map[0].len();
    for j in (0..ny).rev() {
        let row: String = map
            .iter()
            .map(|col| chars[((col[j] / max) * 9.0) as usize % 10] as char)
            .collect();
        println!("  |{row}|");
    }
}
