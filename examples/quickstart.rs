//! Quickstart: the whole Artificial Scientist in ~40 lines.
//!
//! Runs a small Kelvin-Helmholtz simulation that streams particle phase
//! space and in-situ radiation spectra through the in-memory openPMD/SST
//! stack to a continually-trained VAE+INN — no filesystem involved — then
//! inverts a spectrum back into a particle cloud.
//!
//! Run with: `cargo run --release --example quickstart`

use artificial_scientist::core::config::WorkflowConfig;
use artificial_scientist::core::workflow::run_workflow;
use artificial_scientist::tensor::{Tensor, TensorRng};

fn main() {
    // A CPU-friendly configuration of the paper's workflow (§III-B).
    let mut cfg = WorkflowConfig::small();
    cfg.total_steps = 48; // PIC steps
    cfg.steps_per_sample = 4; // one emission window every 4 steps
    cfg.n_rep = 8; // training iterations per window (experience replay)
    cfg.producers = 2; // M slab-decomposed simulation ranks …
    cfg.consumers = 2; // … streaming into K data-parallel learner ranks

    println!("running the in-transit workflow: simulation ∥ streaming ∥ training …");
    let report = run_workflow(&cfg);

    println!(
        "producer: {} PIC steps in {:.2}s ({} windows published)",
        report.producer.steps, report.producer.sim_seconds, report.producer.windows
    );
    let samples: u64 = report.consumer_summaries.iter().map(|s| s.samples).sum();
    println!(
        "consumers: {} ranks, {} samples streamed, {} training iterations in {:.2}s",
        report.consumer_summaries.len(),
        samples,
        report.consumer.losses.len(),
        report.consumer.train_seconds
    );
    println!(
        "loss (Eq. 1): first {:.3} → last {:.3}",
        report
            .consumer
            .losses
            .first()
            .map(|l| l.total)
            .unwrap_or(f64::NAN),
        report.tail_loss(4)
    );

    // Solve the inverse problem: which particle dynamics produce this
    // radiation spectrum? (Ill-posed ⇒ we *sample* solutions.)
    let model = &report.consumer.model;
    let mut rng = TensorRng::seeded(42);
    let spectrum = Tensor::zeros([1, cfg.model.spectrum_dim]);
    let clouds = model.invert_radiation(&spectrum, 3, &mut rng);
    println!(
        "inverted one spectrum into {} candidate particle clouds of {} points each",
        clouds.dims()[0],
        clouds.dims()[1]
    );
    println!("done — see examples/khi_inversion.rs for the full Fig. 9 analysis.");
}
