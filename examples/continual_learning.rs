//! Experience replay vs catastrophic forgetting — the §IV-C ablation.
//!
//! A non-steady data stream drifts through two phases (like the KHI
//! evolving from linear growth to vortex mixing). A model trained only on
//! the newest samples forgets phase 1; the paper's now/EP buffer keeps
//! replaying old samples and suppresses the forgetting.
//!
//! Run with: `cargo run --release --example continual_learning`

use artificial_scientist::nn::model::{ArtificialScientistModel, ModelConfig, ModelOptimizer};
use artificial_scientist::nn::optim::AdamConfig;
use artificial_scientist::replay::buffer::{BufferConfig, TrainingBuffer};
use artificial_scientist::replay::forgetting::ForgettingMeter;
use artificial_scientist::tensor::{Tensor, TensorRng};

/// A synthetic two-phase stream: phase 0 clouds drift +x, phase 1 −x,
/// with matching synthetic "spectra".
fn make_sample(rng: &mut TensorRng, phase: usize, cfg: &ModelConfig) -> (Tensor, Tensor) {
    let shift = if phase == 0 { 0.8 } else { -0.8 };
    let mut points = rng.uniform([1, 32, 6], -0.5, 0.5);
    for p in 0..32 {
        *points.at_mut(&[0, p, 3]) += shift;
    }
    let mut spectrum = Tensor::zeros([1, cfg.spectrum_dim]);
    for k in 0..cfg.spectrum_dim {
        *spectrum.at_mut(&[0, k]) = shift * ((k as f32 + 1.0) / cfg.spectrum_dim as f32);
    }
    (points, spectrum)
}

fn run(replay: bool, cfg: &ModelConfig) -> (f64, ForgettingMeter) {
    let mut rng = TensorRng::seeded(17);
    let mut model = ArtificialScientistModel::new(cfg.clone(), 5);
    let mut opt = ModelOptimizer::new(
        AdamConfig {
            lr: 1e-3,
            weight_decay: 0.0,
            ..AdamConfig::default()
        },
        4.0,
    );
    let buffer_cfg = if replay {
        BufferConfig::default()
    } else {
        // No-replay ablation: batches drawn from the newest samples only.
        BufferConfig {
            n_now: 10,
            n_ep: 1,
            batch_now: 8,
            batch_ep: 0,
        }
    };
    let mut buffer: TrainingBuffer<(Vec<f32>, Vec<f32>)> = TrainingBuffer::new(buffer_cfg, 3);
    let mut meter = ForgettingMeter::new();
    // Frozen early-phase holdout.
    let holdout: Vec<(Tensor, Tensor)> = (0..4).map(|_| make_sample(&mut rng, 0, cfg)).collect();

    let total_steps = 80;
    for step in 0..total_steps {
        let phase = if step < total_steps / 2 { 0 } else { 1 };
        let (p, s) = make_sample(&mut rng, phase, cfg);
        buffer.push((p.data().to_vec(), s.data().to_vec()));
        for _ in 0..4 {
            if !buffer.ready() {
                break;
            }
            let batch = buffer.sample_batch();
            let b = batch.len();
            let mut pts = Vec::new();
            let mut specs = Vec::new();
            for (pv, sv) in &batch {
                pts.extend_from_slice(pv);
                specs.extend_from_slice(sv);
            }
            let points = Tensor::from_vec([b, 32, 6], pts);
            let spectra = Tensor::from_vec([b, cfg.spectrum_dim], specs);
            model.zero_grad();
            let _ = model.accumulate_gradients(&points, &spectra, &mut rng);
            opt.step(&mut model);
        }
        // Evaluate on the frozen early-phase holdout every few steps.
        if step % 8 == 7 {
            let mut early = 0.0;
            for (p, s) in &holdout {
                early += model.evaluate(p, s, &mut rng).total;
            }
            let (pc, sc) = make_sample(&mut rng, phase, cfg);
            let cur = model.evaluate(&pc, &sc, &mut rng).total;
            meter.record(early / holdout.len() as f64, cur);
        }
    }
    (meter.forgetting_score(), meter)
}

fn main() {
    let cfg = ModelConfig::small();
    println!("=== catastrophic forgetting: experience replay on vs off ===");
    let (with_replay, m1) = run(true, &cfg);
    let (without, m2) = run(false, &cfg);
    println!("early-phase holdout loss over time:");
    println!("  with replay   : {:?}", rounded(m1.early_history()));
    println!("  without replay: {:?}", rounded(m2.early_history()));
    println!();
    println!("forgetting score (relative early-loss rebound):");
    println!("  with replay   : {with_replay:.3}");
    println!("  without replay: {without:.3}");
    println!();
    println!("the paper employs the now/EP buffer exactly to suppress this");
    println!("rebound while learning from the non-steady KHI stream (§IV-C).");
}

fn rounded(v: &[f64]) -> Vec<f64> {
    v.iter().map(|x| (x * 1000.0).round() / 1000.0).collect()
}
