//! PIC weak scaling and the Figure of Merit (the Fig. 4 methodology at
//! laptop scale): run the TWEAC-like workload on 1/2/4 communicator
//! ranks, measure FOM, then extrapolate with the calibrated Frontier and
//! Summit models.
//!
//! Run with: `cargo run --release --example fom_scaling`

use artificial_scientist::cluster::comm::CommWorld;
use artificial_scientist::cluster::fom::FomModel;
use artificial_scientist::pic::domain::DistributedSim;
use artificial_scientist::pic::fom::FomCounter;
use artificial_scientist::pic::grid::GridSpec;
use artificial_scientist::pic::tweac::TweacSetup;

fn main() {
    println!("=== measured: weak scaling on this machine ===");
    let steps = 5usize;
    for ranks in [1usize, 2, 4] {
        let g = GridSpec::cubic(8 * ranks, 8, 4, 0.5, 0.5);
        let setup = TweacSetup {
            ppc: 8,
            ..TweacSetup::default()
        };
        let endpoints = CommWorld::new(ranks).into_endpoints();
        let handles: Vec<_> = endpoints
            .into_iter()
            .map(|comm| {
                std::thread::spawn(move || {
                    let sim0 = setup.build(g);
                    let mut d = DistributedSim::new(comm, g, sim0.species);
                    let particles = d.local.particle_count() as u64;
                    let cells = (g.nx / d.world() * g.ny * g.nz) as u64;
                    let mut fom = FomCounter::new();
                    fom.start();
                    for _ in 0..steps {
                        d.step();
                    }
                    fom.stop(steps as u64, particles, cells);
                    fom.fom()
                })
            })
            .collect();
        let total: f64 = handles.into_iter().map(|h| h.join().unwrap()).sum();
        println!(
            "  {ranks} rank(s): FOM {:.2} MUpdates/s ({:.2} per rank)",
            total / 1e6,
            total / 1e6 / ranks as f64
        );
    }

    println!();
    println!("=== modelled: the Fig. 4 machines ===");
    let frontier = FomModel::frontier_paper();
    let summit = FomModel::summit_paper();
    for nodes in [6usize, 96, 1536, 9216] {
        println!(
            "  Frontier {:>5} nodes ({:>6} GPUs): {:7.2} TeraUpdates/s  (efficiency {:.1}%)",
            nodes,
            nodes * 4,
            frontier.fom(nodes) / 1e12,
            frontier.efficiency(nodes) * 100.0
        );
    }
    println!(
        "  Summit    4608 nodes ( 27648 GPUs): {:7.2} TeraUpdates/s",
        summit.fom(4608) / 1e12
    );
    println!();
    println!("  paper: 65.3 TU/s (Frontier) vs 14.7 TU/s (Summit)");
}
