//! The §IV-B streaming benchmark in miniature: a PIC producer feeds the
//! no-op consumer through the SST staging engine under different data
//! planes and queue limits, demonstrating loose coupling, back-pressure
//! and the "no filesystem anywhere" property — then the two consumer
//! streaming policies (blocking vs DropSteps) on the full coupled loop.
//!
//! Run with: `cargo run --release --example streaming_pipeline`

use artificial_scientist::core::config::{ConsumerPolicy, WorkflowConfig};
use artificial_scientist::core::noop::run_noop_consumer;
use artificial_scientist::core::producer::run_producer;
use artificial_scientist::core::workflow::run_workflow;
use artificial_scientist::staging::dataplane::{DataPlane, ReadStrategy};
use artificial_scientist::staging::engine::{open_stream, StreamConfig};

fn main() {
    println!("=== producer → SST → no-op consumer (loose coupling) ===");
    for (plane, queue_limit) in [
        (DataPlane::Mpi, 2),
        (DataPlane::Libfabric(ReadStrategy::Batched(10)), 2),
        (DataPlane::Mpi, 1), // tight queue → visible back-pressure
    ] {
        let mut cfg = WorkflowConfig::small();
        cfg.total_steps = 16;
        cfg.steps_per_sample = 2;
        cfg.data_plane = plane;
        cfg.queue_limit = queue_limit;

        let stream_cfg = StreamConfig {
            queue_limit,
            plane,
            ..StreamConfig::default()
        };
        let (mut pw, mut pr) = open_stream(stream_cfg);
        let (mut rw, mut rr) = open_stream(stream_cfg);
        let (pw, rw) = (pw.remove(0), rw.remove(0));
        let cfg2 = cfg.clone();
        let producer = std::thread::spawn(move || run_producer(&cfg2, pw, rw));
        let rad = {
            let rr = rr.remove(0);
            std::thread::spawn(move || run_noop_consumer(rr))
        };
        let particles = run_noop_consumer(pr.remove(0));
        let _ = rad.join().unwrap();
        let prod = producer.join().unwrap();

        println!(
            "plane {:<24} queue {queue_limit}: {} windows, {:6.2} MB, \
             in-process {:7.1} MB/s, modelled-wire {:6.2} GB/s, stall {:.3}s",
            plane.label(),
            particles.steps,
            particles.bytes as f64 / 1e6,
            particles.mean_throughput() / 1e6,
            particles.simulated_throughput() / 1e9,
            prod.stall_seconds,
        );
    }
    println!();
    println!("=== consumer streaming policies (full coupled loop) ===");
    for policy in [
        ConsumerPolicy::BlockingEveryStep,
        ConsumerPolicy::drop_steps(2),
    ] {
        let mut cfg = WorkflowConfig::small();
        cfg.total_steps = 16;
        cfg.steps_per_sample = 2;
        cfg.n_rep = 6; // deliberately consumer-bound
        cfg.policy = policy;
        let report = run_workflow(&cfg);
        let c = &report.consumer;
        println!(
            "policy {:<10}: trained on {}/{} windows (dropped {}), \
             producer stall {:4.1} %, {:4.1} windows/s",
            policy.label(),
            c.windows,
            c.published_windows,
            c.dropped_windows,
            report.producer.stall_fraction() * 100.0,
            report.windows_per_second(),
        );
    }
    println!();
    println!("note: every byte moved producer→consumer stayed in memory;");
    println!("      the filesystem was never touched (the paper's design goal).");
}
