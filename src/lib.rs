//! # The Artificial Scientist
//!
//! A Rust reproduction of *"The Artificial Scientist: in-Transit Machine
//! Learning of Plasma Simulations"* (arXiv:2501.03383): a loosely-coupled
//! workflow in which a particle-in-cell plasma simulation streams particle
//! phase-space data and in-situ radiation spectra to a machine-learning
//! application that continually trains a VAE+INN model in-transit.
//!
//! This umbrella crate re-exports every subsystem:
//!
//! - [`pic`] — 3D3V relativistic particle-in-cell simulation (the producer)
//! - [`radiation`] — Liénard-Wiechert far-field radiation plugin
//! - [`openpmd`] / [`staging`] — the streaming I/O stack (openPMD over SST)
//! - [`tensor`] / [`nn`] — the MLapp: tensors, VAE+INN, losses, DDP
//! - [`replay`] — experience-replay training buffer for continual learning
//! - [`cluster`] — simulated HPC machine (communicator, network, collectives)
//! - [`core`] — the orchestration tying producer and consumer together
//! - [`serve`] — batched, hot-swappable inference over learner snapshots
//!
//! See `examples/quickstart.rs` for the fastest end-to-end tour.

pub use as_cluster as cluster;
pub use as_core as core;
pub use as_nn as nn;
pub use as_openpmd as openpmd;
pub use as_pic as pic;
pub use as_radiation as radiation;
pub use as_replay as replay;
pub use as_serve as serve;
pub use as_staging as staging;
pub use as_tensor as tensor;

/// Convenient single-import surface for examples and downstream users.
pub mod prelude {
    pub use as_cluster::prelude::*;
    pub use as_core::prelude::*;
    pub use as_nn::prelude::*;
    pub use as_pic::prelude::*;
    pub use as_radiation::prelude::*;
    pub use as_replay::prelude::*;
    pub use as_serve::{
        run_loadgen, run_workflow_serving, EngineSink, InferenceEngine, LoadGenConfig, ServeReport,
    };
}
